package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockedblockAnalyzer targets the shard-barrier deadlock shape: a goroutine
// that blocks — on a channel, a WaitGroup, the shard kernel's window
// barrier, or the sim engine's run loop — while holding a mutex that the
// goroutine it is waiting for needs. The sharded kernel runs one worker per
// shard with barrier synchronization, so one blocked-while-locked worker
// stalls the whole federation.
//
// The check is lexical: within one function, between a Lock/RLock on some
// receiver and the matching Unlock (a deferred Unlock pins the lock to the
// whole function), no statement may block. Function literals are analyzed
// as their own functions — they run on their own goroutine's time.
var LockedblockAnalyzer = &Analyzer{
	Name: "lockedblock",
	Doc:  "no blocking operation (channel, WaitGroup.Wait, engine/kernel run loops, Sleep) while holding a mutex",
	Run:  runLockedblock,
}

// lockedBlockingFuncs are known-blocking calls: pkgPath -> "Recv.Name" or "Name".
var lockedBlockingFuncs = map[string]map[string]string{
	"sync": {
		"WaitGroup.Wait": "sync.WaitGroup.Wait blocks until the counter drains",
	},
	"time": {
		"Sleep": "time.Sleep blocks the goroutine",
	},
	"df3/internal/sim": {
		"Engine.Run":   "sim.Engine.Run executes the event loop to completion",
		"Engine.Drain": "sim.Engine.Drain executes the event loop to completion",
	},
	"df3/internal/shard": {
		"Kernel.Run": "shard.Kernel.Run blocks on the window barrier of every shard",
	},
}

func runLockedblock(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				lockWalk(pass, n.Body.List, map[string]token.Pos{})
			}
		case *ast.FuncLit:
			lockWalk(pass, n.Body.List, map[string]token.Pos{})
		}
		return true
	})
	return nil
}

// lockWalk scans a statement list tracking which mutexes are held. Nested
// control-flow bodies get a copy of the held set: a branch-local
// lock/unlock pair must not leak into the outer scan.
func lockWalk(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if recv, isLock, isUnlock := mutexOp(pass, s.X); recv != "" {
				if isLock {
					held[recv] = s.Pos()
				} else if isUnlock {
					delete(held, recv)
				}
				continue
			}
			reportBlocking(pass, s, held)
		case *ast.DeferStmt:
			// `defer mu.Unlock()` releases only at return: the mutex stays
			// held for the rest of the scan. Other defers are inert here.
			continue
		case *ast.IfStmt:
			if s.Init != nil {
				reportBlocking(pass, s.Init, held)
			}
			reportBlockingExpr(pass, s.Cond, s, held)
			lockWalk(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				lockWalk(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.BlockStmt:
			lockWalk(pass, s.List, held)
		case *ast.ForStmt:
			lockWalk(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			reportBlockingExpr(pass, s.X, s, held)
			lockWalk(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var body *ast.BlockStmt
			if sw, ok := s.(*ast.SwitchStmt); ok {
				body = sw.Body
			} else {
				body = s.(*ast.TypeSwitchStmt).Body
			}
			for _, cc := range body.List {
				if cc, ok := cc.(*ast.CaseClause); ok {
					lockWalk(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(s) {
				reportHeld(pass, s.Pos(), held, "select without a default case blocks")
			}
			for _, cc := range s.Body.List {
				if cc, ok := cc.(*ast.CommClause); ok {
					lockWalk(pass, cc.Body, copyHeld(held))
				}
			}
		default:
			reportBlocking(pass, s, held)
		}
	}
}

// reportBlocking flags blocking constructs anywhere inside stmt (function
// literals excluded — they execute later, on their own terms).
func reportBlocking(pass *Pass, stmt ast.Node, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			reportHeld(pass, n.Arrow, held, "channel send blocks when the receiver is not ready")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportHeld(pass, n.OpPos, held, "channel receive blocks until a sender is ready")
			}
		case *ast.CallExpr:
			fn := pass.CalleeFunc(n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if byName, ok := lockedBlockingFuncs[fn.Pkg().Path()]; ok {
				if why, ok := byName[funcKey(fn)]; ok {
					reportHeld(pass, n.Pos(), held, why)
					return true
				}
			}
			// Interprocedural: the callee's facts say it may block — a
			// channel operation or a blocking call anywhere down its call
			// tree. The known-blocking list above is checked first so its
			// hand-written explanations win for direct calls.
			if ff := pass.Facts.Lookup(FuncKey(fn)); ff.Has(FactBlocks) {
				reportHeld(pass, n.Pos(), held,
					fmt.Sprintf("%s may block (via %s)", shortKey(FuncKey(fn)), ff.via(FactBlocks)))
			}
		}
		return true
	})
}

// reportBlockingExpr flags blocking constructs in a condition/expression
// position (e.g. `if <-ch { ... }`).
func reportBlockingExpr(pass *Pass, e ast.Expr, at ast.Node, held map[string]token.Pos) {
	if e == nil {
		return
	}
	reportBlocking(pass, e, held)
	_ = at
}

func reportHeld(pass *Pass, pos token.Pos, held map[string]token.Pos, why string) {
	// Deterministically pick the mutex locked earliest: iterate receivers in
	// sorted order so position ties resolve the same way every run.
	recvs := make([]string, 0, len(held))
	for r := range held {
		recvs = append(recvs, r)
	}
	sort.Strings(recvs)
	recv, at := recvs[0], held[recvs[0]]
	for _, r := range recvs[1:] {
		if held[r] < at {
			recv, at = r, held[r]
		}
	}
	pass.Reportf(pos, "%s while %s is locked (Lock at line %d): release the mutex before blocking — the shard-barrier deadlock shape",
		why, recv, pass.Fset.Position(at).Line)
}

// mutexOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on a sync.Mutex or
// sync.RWMutex (including embedded ones) and returns the receiver's source
// text.
func mutexOp(pass *Pass, e ast.Expr) (recv string, isLock, isUnlock bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	r := sigOf(fn).Recv()
	if r == nil || !isMutexType(r.Type()) {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	recv = exprString(pass.Fset, sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return recv, true, false
	case "Unlock", "RUnlock":
		return recv, false, true
	}
	return "", false, false
}

func isMutexType(t types.Type) bool {
	return NamedType(t, "sync", "Mutex") || NamedType(t, "sync", "RWMutex")
}

func funcKey(fn *types.Func) string {
	if recv := sigOf(fn).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cc, ok := cc.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
