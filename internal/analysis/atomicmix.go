package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicmixAnalyzer enforces all-or-nothing atomicity per field: a struct
// field passed to the function-style sync/atomic operations anywhere in
// the module must be accessed through them everywhere. One plain read of
// an atomically-written gauge is a data race the race detector only
// catches when the interleaving happens in a test; the analyzer catches
// it from the access sites alone, across package boundaries — the facts
// layer carries each field's example atomic and plain sites, so whichever
// package closes the mix reports it. (Fields of the atomic.Int64 family
// cannot mix by construction and are out of scope.)
var AtomicmixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicmix,
}

// atomicFuncs are the function-style sync/atomic operations whose first
// argument is the address of the shared word.
var atomicFuncs = map[string]bool{
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true, "CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// fieldSite is one access to a struct field.
type fieldSite struct {
	key  string // fieldKey: pkgpath.Type.Field
	pos  ast.Node
	site string // rendered position, for cross-package examples
}

// collectAtomics records the package's atomic and plain field-access
// sites as facts. Only fields that could plausibly be atomic words
// (integer, uintptr, unsafe.Pointer kinds) on module-defined structs are
// tracked, bounding fact size; the first site per field wins, keeping the
// store deterministic.
func collectAtomics(pass *Pass, fx *Facts) {
	atomics, plains := scanFieldAccesses(pass, fx)
	for _, s := range atomics {
		if _, ok := fx.atomicFields[s.key]; !ok {
			fx.atomicFields[s.key] = s.site
		}
	}
	for _, s := range plains {
		if _, ok := fx.plainFields[s.key]; !ok {
			fx.plainFields[s.key] = s.site
		}
	}
}

// scanFieldAccesses walks the package once, splitting candidate field
// accesses into atomic sites (&x.F as a sync/atomic first argument) and
// plain sites (every other selector access), in source order.
func scanFieldAccesses(pass *Pass, fx *Facts) (atomics, plains []fieldSite) {
	// Selectors consumed as atomic arguments must not double as plain
	// accesses; collect them first.
	atomicArgs := map[*ast.SelectorExpr]bool{}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
			sigOf(fn).Recv() != nil || !atomicFuncs[fn.Name()] || len(call.Args) == 0 {
			return true
		}
		ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if key := candidateFieldKey(pass, fx, sel); key != "" {
			atomicArgs[sel] = true
			atomics = append(atomics, fieldSite{key: key, pos: call, site: shortPos(pass.Fset.Position(call.Pos()))})
		}
		return true
	})
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || atomicArgs[sel] {
			return true
		}
		if key := candidateFieldKey(pass, fx, sel); key != "" {
			plains = append(plains, fieldSite{key: key, pos: sel, site: shortPos(pass.Fset.Position(sel.Pos()))})
		}
		return true
	})
	return atomics, plains
}

// candidateFieldKey returns the fieldKey when sel is an access to an
// atomic-word-kind field of a struct defined in an analyzed module
// package, else "".
func candidateFieldKey(pass *Pass, fx *Facts, sel *ast.SelectorExpr) string {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	if !isAtomicWordKind(s.Obj().Type()) {
		return ""
	}
	t := types.Unalias(s.Recv())
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	ownerPath := named.Obj().Pkg().Path()
	if ownerPath != pass.Pkg.Path() && !fx.HasPackage(ownerPath) {
		return "" // stdlib / unanalyzed struct: not ours to police
	}
	return fieldKey(named, sel.Sel.Name)
}

// isAtomicWordKind reports whether t could be a sync/atomic word:
// integer, uintptr, or unsafe.Pointer kinds.
func isAtomicWordKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsInteger != 0 || b.Kind() == types.UnsafePointer
}

func runAtomicmix(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	atomics, plains := scanFieldAccesses(pass, pass.Facts)
	localPlain := map[string]bool{}
	for _, s := range plains {
		localPlain[s.key] = true
	}
	// A plain access to a field the store knows is atomic: report at the
	// plain site — it is the racing read.
	for _, s := range plains {
		if at, ok := pass.Facts.atomicFields[s.key]; ok {
			pass.Reportf(s.pos.Pos(),
				"non-atomic access of %s, which is accessed atomically at %s: mixed access races — use sync/atomic here too",
				shortKey(s.key), at)
		}
	}
	// An atomic access to a field some *other* package reads plainly:
	// report at the atomic site (local plain sites were reported above).
	for _, s := range atomics {
		if localPlain[s.key] {
			continue
		}
		if at, ok := pass.Facts.plainFields[s.key]; ok {
			pass.Reportf(s.pos.Pos(),
				"atomic access of %s, which is accessed non-atomically at %s: mixed access races — make every access atomic",
				shortKey(s.key), at)
		}
	}
	return nil
}
