// Fixture for simtime: sim time is float64 seconds, time.Duration is int64
// nanoseconds; raw conversions silently mix the two scales.
package fixture

import "time"

// float64 of a Duration is nanoseconds, which becomes "seconds" the moment
// it reaches the sim clock.
func rawSeconds(d time.Duration) float64 {
	return float64(d) // want `float conversion of time\.Duration yields nanoseconds`
}

func rawDelta(a, b time.Time) float64 {
	return float64(b.Sub(a)) // want `float conversion of time\.Duration yields nanoseconds`
}

// A float of sim seconds reinterpreted as nanoseconds.
func toDuration(simSeconds float64) time.Duration {
	return time.Duration(simSeconds) // want `time\.Duration of a float interprets sim-time seconds as nanoseconds`
}

// The explicit forms spell the scale out.
func okSeconds(d time.Duration) float64 {
	return d.Seconds()
}

func okDuration(simSeconds float64) time.Duration {
	return time.Duration(simSeconds * float64(time.Second))
}

// Integer construction of durations never crosses the float boundary.
func okFromInt(n int) time.Duration {
	return time.Duration(n) * time.Second
}
