// Fixture for df3directive, run together with maporder: malformed
// suppressions are findings and suppress nothing, so the finding they meant
// to silence fires too.
package fixture

// A reasonless suppression is itself a finding — and the maporder finding
// it tried to cover still fires.
func reasonless(m map[string]float64) float64 {
	var s float64
	//df3:unordered-ok // want `suppression of maporder without a reason`
	for _, v := range m { // want `map iteration order is random`
		s += v
	}
	return s
}

// Naming an analyzer that does not exist is a finding.
func unknownAnalyzer(m map[string]float64) float64 {
	var s float64
	//df3:allow(nosuchanalyzer) the analyzer name is wrong // want `df3:allow names unknown analyzer "nosuchanalyzer"`
	for _, v := range m { // want `map iteration order is random`
		s += v
	}
	return s
}

//df3:frobnicate the verb is unknown // want `unknown df3: directive "frobnicate"`

//df3:allow(maporder the parenthesis never closes // want `missing closing parenthesis`

// A well-formed, reasoned suppression silences the finding and is itself
// silent.
func suppressed(m map[string]float64) float64 {
	var s float64
	//df3:unordered-ok this fixture accepts any accumulation order
	for _, v := range m {
		s += v
	}
	return s
}
