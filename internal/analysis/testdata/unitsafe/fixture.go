// Fixture for unitsafe: the units types make dimensions visible to the
// compiler; conversions and arithmetic must not launder them away.
package fixture

import (
	"df3/internal/metrics"
	"df3/internal/sim"
	"df3/internal/units"
)

// Same magnitude, different physical dimension.
func confuseDimensions(e units.Joule) units.Watt {
	return units.Watt(e) // want `cross-dimension conversion units\.Joule -> units\.Watt`
}

// Watts times watts is watts squared, whatever the type says.
func wattsSquared(a, b units.Watt) units.Watt {
	return a * b // want `units\.Watt \* units\.Watt is squared`
}

func byteRatio(a, b units.Byte) units.Byte {
	return a / b // want `units\.Byte / units\.Byte is a dimensionless ratio`
}

// The dimension is erased exactly where a signature should carry it.
func leak(e *sim.Engine, w units.Watt) {
	e.At(float64(w), func() {}) // want `units\.Watt discarded to raw float64`
}

// A constant operand is a scalar multiplier, not a second dimension.
func scaled() units.Byte {
	return 16 * units.KB
}

// Wrapping an integer count is how a quantity scales by a cardinality.
func repeated(per units.Byte, n int) units.Byte {
	return per * units.Byte(n)
}

// Dividing by a unit constant extracts a pure number of that unit.
func megabytes(b units.Byte) float64 {
	return float64(b / units.MB)
}

// The metrics package is a dimensionless sink: recording float64(w) as a
// statistical sample is sanctioned.
func record(h *metrics.Histogram, w units.Watt) {
	h.Observe(float64(w))
}
