// Fixture for wirepair, package a: codec pairs (one deliberately
// drifted) and the Decoder-shaped function whose switch cases are the
// handled message kinds.
package a

import "df3/internal/shard"

// Message kinds of the fixture protocol. KindJob is handled by
// DecodeFrame below; KindLost is not, so sending it is a finding.
const (
	KindJob  uint32 = 1
	KindLost uint32 = 2
)

type enc struct{ buf []byte }

func (e *enc) u32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *enc) f64(v float64) { e.u64(uint64(v)) }

type dec struct {
	buf []byte
	off int
}

func (d *dec) u32() uint32 {
	v := uint32(d.buf[d.off]) | uint32(d.buf[d.off+1])<<8 | uint32(d.buf[d.off+2])<<16 | uint32(d.buf[d.off+3])<<24
	d.off += 4
	return v
}
func (d *dec) u64() uint64  { return uint64(d.u32()) | uint64(d.u32())<<32 }
func (d *dec) f64() float64 { return float64(d.u64()) }

// Job is the fixture's wire message.
type Job struct {
	ID       uint64
	Deadline float64
	Sizes    []uint32
}

// EncodeJob and DecodeJob mirror each other exactly: clean.
func EncodeJob(e *enc, j *Job) {
	e.u64(j.ID)
	e.f64(j.Deadline)
	e.u32(uint32(len(j.Sizes)))
	for _, s := range j.Sizes {
		e.u32(s)
	}
}

func DecodeJob(d *dec) *Job {
	j := &Job{ID: d.u64(), Deadline: d.f64()}
	n := d.u32()
	for i := uint32(0); i < n; i++ {
		j.Sizes = append(j.Sizes, d.u32())
	}
	return j
}

// EncodeAck writes a u32 then an f64; DecodeAck drifted to reading a
// u64 where the f64 should be.
func EncodeAck(e *enc, code uint32, rtt float64) {
	e.u32(code)
	e.f64(rtt)
}

func DecodeAck(d *dec) (uint32, float64) { // want `DecodeAck does not mirror EncodeAck: decoder reads \[u32 u64\], encoder writes \[u32 f64\]`
	return d.u32(), float64(d.u64())
}

// DecodeFrame matches the shard.Decoder shape, so the facts layer
// records its switch cases as the handled kinds.
func DecodeFrame(dst *shard.LP, kind uint32, payload []byte) (func(), error) {
	switch kind {
	case KindJob:
		return func() {}, nil
	}
	return nil, nil
}
