// Fixture for wirepair, package b: SendMsg kinds are checked against
// the Decoder cases package a's facts recorded.
package b

import (
	"df3/internal/shard"

	"df3lint/fixture/wirepair/a"
)

// SendJob sends a kind DecodeFrame handles: clean.
func SendJob(k *shard.Kernel, src, dst *shard.LP, payload []byte) {
	k.SendMsg(src, dst, 0, 0, a.KindJob, payload)
}

// SendLost sends a kind no Decoder case resolves.
func SendLost(k *shard.Kernel, src, dst *shard.LP, payload []byte) {
	k.SendMsg(src, dst, 0, 0, a.KindLost, payload) // want `message kind a\.KindLost is sent but no shard\.Decoder case handles it`
}
