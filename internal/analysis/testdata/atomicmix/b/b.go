// Fixture for atomicmix, package b: consumers that mix access modes
// across the package boundary.
package b

import (
	"sync/atomic"

	"df3lint/fixture/atomicmix/a"
)

// Jobs reads an atomically-updated field without atomics: the racing
// read is flagged where it happens.
func Jobs(g *a.Gauge) int64 {
	return g.Jobs // want `non-atomic access of a\.Gauge\.Jobs, which is accessed atomically at`
}

// Done loads atomically, matching every other access: clean.
func Done(g *a.Gauge) int64 {
	return atomic.LoadInt64(&g.Done)
}

// Mix is the other direction: an atomic access to a field package a
// writes plainly is flagged at the atomic site.
func Mix(g *a.Gauge) int64 {
	return atomic.LoadInt64(&g.Mixed) // want `atomic access of a\.Gauge\.Mixed, which is accessed non-atomically at`
}

// Plain is read plainly everywhere: clean.
func Plain(g *a.Gauge) int64 {
	return g.Plain
}
