// Fixture for atomicmix, package a: the gauge struct and its writers.
package a

import "sync/atomic"

// Gauge is updated concurrently by workers.
type Gauge struct {
	Jobs  int64
	Done  int64
	Mixed int64
	Plain int64
}

// Account bumps the counters atomically.
func Account(g *Gauge, n int64) {
	atomic.AddInt64(&g.Jobs, n)
	atomic.AddInt64(&g.Done, n)
}

// Reset writes Mixed and Plain without atomics; package b closes the mix
// on Mixed.
func Reset(g *Gauge) {
	g.Mixed = 0
	g.Plain = 0
}
