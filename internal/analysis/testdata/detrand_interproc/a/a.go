// Fixture for the interprocedural detrand facts, package a: the
// wall-clock and math/rand roots.
package a

import (
	"math/rand" // want `import of math/rand is nondeterministic`
	"time"
)

// Stamp reads the wall clock; callers in other packages inherit the
// taint through its fact summary.
func Stamp() time.Time { // wantfact WallClock
	return time.Now() // want `time\.Now reads the wall clock`
}

// Pick draws from the process-global generator.
func Pick(n int) int { // wantfact MathRand
	return rand.Intn(n)
}

// BootTime is a sanctioned boundary: the suppression stops the taint,
// so cross-package callers arrive clean.
func BootTime() time.Time { // wantfact -
	//df3:allow(detrand) boot banner timestamp, never enters simulation state
	return time.Now()
}
