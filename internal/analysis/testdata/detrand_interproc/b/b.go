// Fixture for the interprocedural detrand checks, package b:
// cross-package calls to tainted functions are findings at the callsite.
package b

import "df3lint/fixture/detrand_interproc/a"

// Epoch inherits the wall-clock taint through a.Stamp.
func Epoch() int64 { // wantfact WallClock
	return a.Stamp().Unix() // want `call to a\.Stamp reads the wall clock \(via time\.Now at`
}

// Roll inherits the math/rand taint through a.Pick.
func Roll() int { // wantfact MathRand
	return a.Pick(6) // want `call to a\.Pick draws nondeterministic randomness \(via math/rand\.Intn at`
}

// Boot calls the sanctioned boundary: clean.
func Boot() int64 { // wantfact -
	return a.BootTime().Unix()
}
