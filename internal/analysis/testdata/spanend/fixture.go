// Fixture for spanend: a locally-scoped trace span must be ended on every
// path out of its block, or explicitly escape to a new owner.
package fixture

import (
	"df3/internal/obs"
	"df3/internal/sim"
	"df3/internal/trace"
)

func leakyReturn(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0)
	if now > 0 {
		return // want `return leaks span id`
	}
	r.EndSpan(now+1, id)
}

func fallsThrough(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0) // want `span id is not ended when its block falls through`
	if now > 0 {
		r.EndSpan(now, id)
	}
}

// A deferred end covers every later exit.
func deferred(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0)
	defer r.EndSpan(now+1, id)
	if now > 0 {
		return
	}
}

// Ending on each branch is fine.
func branches(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0)
	if now > 0 {
		r.EndSpanDetail(now, id, "early")
		return
	}
	r.EndSpan(now+1, id)
}

// The id escapes: ownership (and the obligation to end) transfers to the
// caller, so the local analysis stands down.
func escapes(r *trace.Recorder, now sim.Time) trace.SpanID {
	id := r.BeginSpan(now, "stage", 1, 0)
	return id
}

// Sampled roots obey the same contract: a root begun through the
// head-sampling wrapper leaks exactly like a raw recorder span.
func sampledLeakyReturn(s *obs.Sampled, now sim.Time) {
	id := s.BeginRoot(now, "ingest", "edge", 7, 1)
	if now > 0 {
		return // want `return leaks span id`
	}
	s.EndSpan(now+1, id)
}

func sampledFallsThrough(s *obs.Sampled, now sim.Time) {
	id := s.BeginSpan(now, "stage", 1, 0) // want `span id is not ended when its block falls through`
	if now > 0 {
		s.EndSpanDetail(now, id, "early")
	}
}

// Wrapper lifecycle calls — child begins under the id, instants, ends on
// every branch — keep the id local and satisfy the analyzer without any
// suppression.
func sampledBranches(s *obs.Sampled, now sim.Time) {
	id := s.BeginRoot(now, "ingest", "dcc", 7, 2)
	child := s.BeginSpan(now, "queue", 2, id)
	s.Instant(now, "note", 2, id, "queued")
	s.EndSpan(now+1, child)
	if now > 0 {
		s.EndSpanDetail(now+1, id, "early")
		return
	}
	s.EndSpan(now+2, id)
}

// A deferred wrapper end covers every later exit.
func sampledDeferred(s *obs.Sampled, now sim.Time) {
	id := s.BeginRoot(now, "ingest", "edge", 1, 3)
	defer s.EndSpan(now+1, id)
	if now > 0 {
		return
	}
}
