// Fixture for spanend: a locally-scoped trace span must be ended on every
// path out of its block, or explicitly escape to a new owner.
package fixture

import (
	"df3/internal/sim"
	"df3/internal/trace"
)

func leakyReturn(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0)
	if now > 0 {
		return // want `return leaks span id`
	}
	r.EndSpan(now+1, id)
}

func fallsThrough(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0) // want `span id is not ended when its block falls through`
	if now > 0 {
		r.EndSpan(now, id)
	}
}

// A deferred end covers every later exit.
func deferred(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0)
	defer r.EndSpan(now+1, id)
	if now > 0 {
		return
	}
}

// Ending on each branch is fine.
func branches(r *trace.Recorder, now sim.Time) {
	id := r.BeginSpan(now, "stage", 1, 0)
	if now > 0 {
		r.EndSpanDetail(now, id, "early")
		return
	}
	r.EndSpan(now+1, id)
}

// The id escapes: ownership (and the obligation to end) transfers to the
// caller, so the local analysis stands down.
func escapes(r *trace.Recorder, now sim.Time) trace.SpanID {
	id := r.BeginSpan(now, "stage", 1, 0)
	return id
}
