// Fixture for the interprocedural lockedblock checks, package b:
// calling a transitively-blocking function while holding a mutex is the
// shard-barrier deadlock shape.
package b

import (
	"sync"

	"df3lint/fixture/lockedblock_interproc/a"
)

type Box struct {
	mu sync.Mutex
	ch chan int
}

// Get calls the blocking a.Wait with the mutex held: flagged.
func (b *Box) Get() int { // wantfact Blocks,Locks
	b.mu.Lock()
	defer b.mu.Unlock()
	return a.Wait(b.ch) // want `a\.Wait may block \(via channel receive at`
}

// Peek polls instead: a.Poll cannot block, holding the mutex is fine.
func (b *Box) Peek() int { // wantfact Locks
	b.mu.Lock()
	defer b.mu.Unlock()
	return a.Poll(b.ch)
}
