// Fixture for the interprocedural lockedblock facts, package a: the
// blocking root and the non-blocking polling variant.
package a

// Wait blocks on the channel until a sender arrives.
func Wait(ch chan int) int { // wantfact Blocks
	return <-ch
}

// Poll never blocks: the receive is a select arm and the select has a
// default case.
func Poll(ch chan int) int { // wantfact -
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
