// Fixture for lockedblock: no blocking operation while holding a mutex —
// the shard-barrier deadlock shape.
package fixture

import (
	"sync"

	"df3/internal/sim"
)

type box struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

func (b *box) sendLocked() {
	b.mu.Lock()
	b.ch <- 1 // want `channel send blocks when the receiver is not ready`
	b.mu.Unlock()
}

func (b *box) receiveLocked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `channel receive blocks until a sender is ready`
}

func (b *box) waitLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want `sync\.WaitGroup\.Wait blocks until the counter drains`
}

func (b *box) selectLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `select without a default case blocks`
	case v := <-b.ch:
		_ = v
	}
}

func runLocked(e *sim.Engine, mu *sync.Mutex) {
	mu.Lock()
	e.Run(10) // want `sim\.Engine\.Run executes the event loop to completion`
	mu.Unlock()
}

// Releasing before blocking is the fix.
func (b *box) sendUnlocked() {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1
}

// A select that cannot block is fine under the lock.
func (b *box) poll() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		return v
	default:
		return 0
	}
}

// A function literal runs on its own goroutine's time.
func (b *box) spawn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1
	}()
}
