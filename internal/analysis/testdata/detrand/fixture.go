// Fixture for detrand: wall-clock reads and math/rand smuggle host state
// into a run; all randomness must come from seeded rng streams.
package fixture

import (
	"math/rand" // want `import of math/rand is nondeterministic`
	"time"

	"df3/internal/rng"
)

func wallClock() float64 {
	t := time.Now()          // want `time\.Now reads the wall clock`
	elapsed := time.Since(t) // want `time\.Since reads the wall clock`
	return elapsed.Seconds()
}

func hostRandom() int {
	return rand.Intn(6)
}

// seededDraw is the sanctioned pattern: randomness flows from a stream
// forked off the scenario seed.
func seededDraw(s *rng.Stream) int {
	return s.Intn(6)
}

// Duration constants are values, not wall-clock reads.
const tick = 250 * time.Millisecond
