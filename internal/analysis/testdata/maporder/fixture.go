// Fixture for maporder: range over a map is fine only when the body is
// provably order-insensitive.
package fixture

import "sort"

// Float addition is not associative: the sum depends on iteration order.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is random and this loop is order-dependent`
		s += v
	}
	return s
}

// Last write wins: which key survives depends on iteration order.
func anyKey(m map[string]int) string {
	var k string
	for key := range m { // want `order-dependent`
		k = key
	}
	return k
}

// Integer accumulation commutes exactly.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Per-key writes land on distinct keys of the output map.
func double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Min/max tracking reaches the same extremum in any order.
func minVal(m map[string]int) int {
	best := int(^uint(0) >> 1)
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}

// The canonical deterministic pattern: collect, sort, then iterate.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Deleting from the ranged map is sanctioned by the spec and per-key.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// A reasoned suppression silences the finding.
func anyKeySuppressed(m map[string]int) string {
	var k string
	//df3:unordered-ok the caller treats the result as an arbitrary sample
	for key := range m {
		k = key
	}
	return k
}
