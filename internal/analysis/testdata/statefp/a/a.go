// Fixture for statefp, package a: the contract-declaring structs and the
// local snapshot function.
package a

// State is checkpointed by the three functions the directive names; each
// of them must mention every field.
//
//df3:statefp df3lint/fixture/statefp/a.Snapshot df3lint/fixture/statefp/b.Write df3lint/fixture/statefp/b.Read
type State struct {
	Now   int64
	Seq   uint64
	Fired int64
}

// Snapshot covers every field: clean.
func Snapshot(s *State) []uint64 {
	return []uint64{uint64(s.Now), s.Seq, uint64(s.Fired)}
}

// Ghost's contract names a function no analyzed package defines; the
// contract's home package (b, where Digest lives) reports it.
//
//df3:statefp df3lint/fixture/statefp/b.Gone df3lint/fixture/statefp/b.Digest
type Ghost struct {
	X int64
}

//df3:statefp df3lint/fixture/statefp/a.Snapshot // want `df3:statefp must sit in the doc comment of a struct type declaration`
type Num int64
