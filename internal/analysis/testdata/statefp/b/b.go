// Fixture for statefp, package b: the home package of both contracts.
package b

import "df3lint/fixture/statefp/a"

// Write covers every field: clean.
func Write(s *a.State) []uint64 {
	return []uint64{uint64(s.Now), s.Seq, uint64(s.Fired)}
}

// Read drifted: it never restores Fired.
func Read(words []uint64) a.State { // want `b\.Read does not cover field Fired of a\.State`
	return a.State{Now: int64(words[0]), Seq: words[1]}
}

// Digest anchors the home completeness check: the Ghost contract also
// names b.Gone, which nothing defines.
func Digest(g *a.Ghost) uint64 { // want `names b\.Gone, but no analyzed package defines it`
	return uint64(g.X)
}
