package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
)

// Unit is one type-checked package ready for analysis — the common shape
// produced by the go-list loader (standalone df3lint, tests) and by the vet
// unitchecker protocol (go vet -vettool).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// ReadFile returns a source file's content; nil means os.ReadFile.
	// The suppression index and the directive checker consult it.
	ReadFile func(string) ([]byte, error)
	// Facts is the shared cross-package store, pre-populated with the
	// summaries of every dependency analyzed before this unit. Nil means a
	// fresh store (single-package analysis still gets intra-package facts).
	Facts *Facts
}

// Finding is one surviving diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// Suppression is one valid //df3: directive in the analyzed package — the
// baseline records them so CI can fail when a suppression appears or loses
// its reason without the baseline being regenerated deliberately.
type Suppression struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// RunPackage computes the package's interprocedural facts into u.Facts,
// applies the analyzers, filters findings through the //df3: suppression
// directives, and returns the survivors sorted by position along with the
// package's valid suppressions. Analyzer errors (not findings) abort the
// run.
func RunPackage(u Unit, analyzers []*Analyzer) ([]Finding, []Suppression, error) {
	readFile := u.ReadFile
	if readFile == nil {
		readFile = os.ReadFile
	}
	ix := newSuppressionIndex()
	for _, f := range u.Files {
		tf := u.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		src, err := readFile(tf.Name())
		if err != nil {
			return nil, nil, err
		}
		ix.addFile(tf, f, tf.Name(), src)
	}

	facts := u.Facts
	if facts == nil {
		facts = NewFacts()
	}
	if u.Pkg != nil && !facts.HasPackage(u.Pkg.Path()) {
		computeFacts(u, ix, facts)
	}

	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			ReadFile:  readFile,
			Facts:     facts,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			posn := u.Fset.Position(d.Pos)
			if ix.suppressed(name, posn) {
				return
			}
			out = append(out, Finding{Analyzer: name, Posn: posn, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})

	var sups []Suppression
	for _, d := range ix.all {
		if d.Problem != "" || d.Declaration {
			continue // declarations are contracts, not accepted exceptions
		}
		sups = append(sups, Suppression{File: d.File, Line: d.Line, Analyzer: d.Analyzer, Reason: d.Reason})
	}
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, sups, nil
}
