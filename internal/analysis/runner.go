package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
)

// Unit is one type-checked package ready for analysis — the common shape
// produced by the go-list loader (standalone df3lint, tests) and by the vet
// unitchecker protocol (go vet -vettool).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// ReadFile returns a source file's content; nil means os.ReadFile.
	// The suppression index and the directive checker consult it.
	ReadFile func(string) ([]byte, error)
}

// Finding is one surviving diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// RunPackage applies the analyzers to one package, filters findings through
// the //df3: suppression directives, and returns the survivors sorted by
// position. Analyzer errors (not findings) abort the run.
func RunPackage(u Unit, analyzers []*Analyzer) ([]Finding, error) {
	readFile := u.ReadFile
	if readFile == nil {
		readFile = os.ReadFile
	}
	ix := newSuppressionIndex()
	for _, f := range u.Files {
		tf := u.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		src, err := readFile(tf.Name())
		if err != nil {
			return nil, err
		}
		ix.addFile(tf, f, tf.Name(), src)
	}

	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			ReadFile:  readFile,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			posn := u.Fset.Position(d.Pos)
			if ix.suppressed(name, posn) {
				return
			}
			out = append(out, Finding{Analyzer: name, Posn: posn, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
