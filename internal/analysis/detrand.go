package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetrandAnalyzer enforces the reproducibility contract's first clause: a
// scenario is a deterministic function of its seed. Wall-clock reads
// (time.Now, time.Since, time.Until) and the math/rand generators (whose
// global source is seeded per-process) both smuggle host state into a run,
// which breaks byte-identical replay and the N-shard ≡ serial guarantee.
// All randomness must come from internal/rng streams forked from the
// scenario seed. Reporting-only wall-clock measurement (e.g. the bench
// harness timing itself) is suppressed site-by-site with
// //df3:allow(detrand) <reason>.
var DetrandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads and math/rand; randomness must come from internal/rng substreams",
	Run:  runDetrand,
}

// detrandBannedImports are packages whose presence alone defeats seeded
// reproducibility.
var detrandBannedImports = map[string]string{
	"math/rand":    "use a df3/internal/rng Stream forked from the scenario seed",
	"math/rand/v2": "use a df3/internal/rng Stream forked from the scenario seed",
	"crypto/rand":  "crypto randomness is never reproducible; use df3/internal/rng for simulation draws",
}

// detrandBannedFuncs are wall-clock reads in package time.
var detrandBannedFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, ok := detrandBannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s is nondeterministic: %s", path, hint)
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "time" {
			if sigOf(fn).Recv() == nil && detrandBannedFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock: sim code must derive time from the engine (sim.Time) so runs replay byte-identically",
					fn.Name())
			}
			return true
		}
		// Interprocedural: a cross-package call to a function whose facts
		// say it (transitively) reads the wall clock or draws from
		// math/rand is flagged at the callsite. In-package calls are not:
		// the root site is already reported in this same package, and one
		// finding per taint is enough. A //df3:allow at the root or at any
		// propagating callsite stopped the taint during fact computation,
		// so sanctioned reporting-only wrappers arrive here clean.
		if pass.Pkg != nil && fn.Pkg() == pass.Pkg {
			return true
		}
		ff := pass.Facts.Lookup(FuncKey(fn))
		if ff.Has(FactWallClock) {
			pass.Reportf(call.Pos(),
				"call to %s reads the wall clock (via %s): sim code must derive time from the engine (sim.Time)",
				shortKey(FuncKey(fn)), ff.via(FactWallClock))
		}
		if ff.Has(FactMathRand) {
			pass.Reportf(call.Pos(),
				"call to %s draws nondeterministic randomness (via %s): use a df3/internal/rng Stream forked from the scenario seed",
				shortKey(FuncKey(fn)), ff.via(FactMathRand))
		}
		return true
	})
	return nil
}

// isTypeConversion reports whether call is a conversion T(x), returning T.
func isTypeConversion(pass *Pass, call *ast.CallExpr) (types.Type, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}
