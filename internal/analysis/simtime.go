package analysis

import (
	"go/ast"
)

// SimtimeAnalyzer guards the boundary between the two time systems. The
// simulator's clock (sim.Time) is seconds as a float64; the host's clock
// (time.Duration) is integer nanoseconds. A raw conversion between them is
// the temporal version of a watts-vs-joules mixup and is off by 1e9:
//
//	float64(d)            // nanoseconds, not seconds — use d.Seconds()
//	time.Duration(secs)   // interprets seconds as nanoseconds —
//	                      // use time.Duration(secs * float64(time.Second))
//
// Conversions that pass through a time.Duration-typed scale factor
// (float64(d) / float64(time.Second), secs*float64(time.Second)) are the
// sanctioned helpers and are not flagged.
var SimtimeAnalyzer = &Analyzer{
	Name: "simtime",
	Doc:  "forbid raw numeric conversions between wall-clock time.Duration and sim-time seconds",
	Run:  runSimtime,
}

func runSimtime(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target, ok := isTypeConversion(pass, call)
		if !ok {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		argType := pass.TypeOf(arg)
		if argType == nil {
			return true
		}

		// float(T)(d) where d is a time.Duration: yields nanoseconds where
		// the reader expects seconds.
		if IsFloatKind(target) && NamedType(argType, "time", "Duration") {
			if mentionsDuration(pass, arg) {
				// e.g. float64(d / time.Second): already rescaled.
				return true
			}
			pass.Reportf(call.Pos(),
				"float conversion of time.Duration yields nanoseconds, not sim-time seconds: use .Seconds() or divide by float64(time.Second)")
			return true
		}

		// time.Duration(f) where f is a float: interprets sim seconds as
		// nanoseconds unless the expression carries its own scale factor.
		if NamedType(target, "time", "Duration") && IsFloatKind(argType) {
			if mentionsDuration(pass, arg) {
				// e.g. time.Duration(secs * float64(time.Second)).
				return true
			}
			pass.Reportf(call.Pos(),
				"time.Duration of a float interprets sim-time seconds as nanoseconds: multiply by float64(time.Second) first")
		}
		return true
	})
	return nil
}

// mentionsDuration reports whether e contains a time.Duration-typed
// constant (time.Second, time.Millisecond, ...) — the signature of an
// explicit unit rescale. A mere difference of two Durations does not
// qualify: float64(end-start) is still nanoseconds.
func mentionsDuration(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sub, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		tv, ok := pass.TypesInfo.Types[sub]
		if ok && tv.Value != nil && NamedType(tv.Type, "time", "Duration") {
			found = true
			return false
		}
		return true
	})
	return found
}
