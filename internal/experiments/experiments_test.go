package experiments

import (
	"io"
	"strings"
	"testing"
)

func quick() Options { return Options{Seed: 1, Quick: true} }

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("%d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Desc == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if ByID("E1") == nil || ByID("A4") == nil {
		t.Error("ByID lookup failed")
	}
	if ByID("nope") != nil {
		t.Error("ByID returned phantom experiment")
	}
}

func TestE1ShapeQuick(t *testing.T) {
	r := E1Fig4Comfort(quick())
	if r.Findings["min_month_mean"] < 17 || r.Findings["max_month_mean"] > 26 {
		t.Errorf("monthly means out of band: %v..%v",
			r.Findings["min_month_mean"], r.Findings["max_month_mean"])
	}
	if r.Findings["in_band_fraction"] < 0.7 {
		t.Errorf("in-band fraction %v", r.Findings["in_band_fraction"])
	}
}

func TestE2ShapeQuick(t *testing.T) {
	r := E2PUE(quick())
	if r.Findings["df_pue"] > 1.05 {
		t.Errorf("DF PUE = %v, want ~1.0", r.Findings["df_pue"])
	}
	if r.Findings["dc_pue"] < 1.4 {
		t.Errorf("DC PUE = %v, want ~1.5", r.Findings["dc_pue"])
	}
	if r.Findings["df_heat_fraction"] < 0.9 {
		t.Errorf("DF heat fraction = %v", r.Findings["df_heat_fraction"])
	}
}

func TestE3ShapeQuick(t *testing.T) {
	r := E3ThreeFlows(quick())
	if r.Findings["in_band"] < 0.7 {
		t.Errorf("comfort collapsed: %v", r.Findings["in_band"])
	}
	if r.Findings["edge_miss_rate"] > 0.1 {
		t.Errorf("edge miss rate %v", r.Findings["edge_miss_rate"])
	}
	if r.Findings["dcc_jobs"] == 0 {
		t.Error("no DCC jobs completed")
	}
}

func TestE5ShapeQuick(t *testing.T) {
	r := E5PeakPolicies(quick())
	// Reject must be the worst; smart must beat reject clearly.
	if r.Findings["miss_smart"] >= r.Findings["miss_reject"] {
		t.Errorf("smart (%v) not better than reject (%v)",
			r.Findings["miss_smart"], r.Findings["miss_reject"])
	}
	if r.Findings["miss_preempt"] >= r.Findings["miss_reject"] {
		t.Errorf("preempt (%v) not better than reject (%v)",
			r.Findings["miss_preempt"], r.Findings["miss_reject"])
	}
}

func TestE4ShapeQuick(t *testing.T) {
	r := E4ArchClasses(quick())
	// At the highest load the dedicated edge workers must hold p99 below
	// the shared class (which queues behind batch work under delay-only
	// offloading).
	if r.Findings["p99_dedicated_6"] >= r.Findings["p99_shared_6"] {
		t.Errorf("dedicated p99 (%v) not below shared (%v) at high load",
			r.Findings["p99_dedicated_6"], r.Findings["p99_shared_6"])
	}
	if r.Findings["miss_dedicated_6"] > r.Findings["miss_shared_6"] {
		t.Errorf("dedicated misses (%v) above shared (%v) at high load",
			r.Findings["miss_dedicated_6"], r.Findings["miss_shared_6"])
	}
}

func TestE6ShapeQuick(t *testing.T) {
	r := E6Seasonality(quick())
	hw, hs := r.Findings["heater_winter"], r.Findings["heater_summer"]
	bw, bs := r.Findings["boiler_winter"], r.Findings["boiler_summer"]
	if hs <= 0 || hw/hs < 3 {
		t.Errorf("heater winter/summer ratio %v/%v too flat", hw, hs)
	}
	if bs <= 0 || bw/bs >= hw/hs {
		t.Errorf("boilers (%v/%v) not flatter than heaters (%v/%v)", bw, bs, hw, hs)
	}
}

func TestA1ShapeQuick(t *testing.T) {
	r := AblationRegulator(quick())
	if r.Findings["prop_switches"] >= r.Findings["hyst_switches"] {
		t.Errorf("proportional swings (%v) not below hysteresis (%v)",
			r.Findings["prop_switches"], r.Findings["hyst_switches"])
	}
}

func TestA3ShapeQuick(t *testing.T) {
	r := AblationEDF(quick())
	if r.Findings["edf_miss"] > r.Findings["fcfs_miss"] {
		t.Errorf("EDF miss (%v) above FCFS (%v)",
			r.Findings["edf_miss"], r.Findings["fcfs_miss"])
	}
}

func TestE7ShapeQuick(t *testing.T) {
	r := E7Forecast(quick())
	if r.Findings["ts_wape"] > 0.35 {
		t.Errorf("thermosensitivity WAPE %v too high", r.Findings["ts_wape"])
	}
	if r.Findings["hw_wape"] > 1.0 {
		t.Errorf("Holt-Winters WAPE %v too high", r.Findings["hw_wape"])
	}
	// The §III-C claim: the weather-driven model beats the pure
	// time-series approaches.
	if r.Findings["ts_wape"] >= r.Findings["naive_wape"] {
		t.Errorf("weather model (%v) not better than naive (%v)",
			r.Findings["ts_wape"], r.Findings["naive_wape"])
	}
	if r.Findings["ts_wape"] >= r.Findings["hw_wape"] {
		t.Errorf("weather model (%v) not better than Holt-Winters (%v)",
			r.Findings["ts_wape"], r.Findings["hw_wape"])
	}
}

func TestE8ShapeQuick(t *testing.T) {
	r := E8EdgeLatency(quick())
	d, i, c := r.Findings["direct_median_ms"], r.Findings["indirect_median_ms"], r.Findings["cloud_median_ms"]
	if !(d < i && i < c) {
		t.Errorf("latency ordering broken: direct %v, indirect %v, cloud %v", d, i, c)
	}
	if c < i+50 {
		t.Errorf("cloud penalty too small: %v vs %v (Internet RTT should dominate)", c, i)
	}
}

func TestE12ShapeQuick(t *testing.T) {
	r := E12DesktopGrid(quick())
	if r.Findings["df_miss"] >= r.Findings["grid_miss"] {
		t.Errorf("DF3 miss (%v) not below grid miss (%v)",
			r.Findings["df_miss"], r.Findings["grid_miss"])
	}
	if r.Findings["grid_miss"] < 0.2 {
		t.Errorf("grid miss rate %v suspiciously low", r.Findings["grid_miss"])
	}
}

func TestE13ShapeQuick(t *testing.T) {
	r := E13CapacityPlanning(quick())
	if r.Findings["prudent_penalties"] >= r.Findings["aggressive_penalties"] {
		t.Errorf("prudent penalties (%v) not below aggressive (%v)",
			r.Findings["prudent_penalties"], r.Findings["aggressive_penalties"])
	}
	if r.Findings["prudent_net"] <= 0 {
		t.Errorf("prudent net = %v, want positive", r.Findings["prudent_net"])
	}
	if r.Findings["model_slope"] <= 0 {
		t.Errorf("capacity model slope = %v, want positive", r.Findings["model_slope"])
	}
}

func TestE14ShapeQuick(t *testing.T) {
	r := E14Economics(quick())
	if r.Findings["df_net_per_ch"] <= r.Findings["dc_net_per_ch"] {
		t.Errorf("DF net €/core-h (%v) not above datacenter (%v)",
			r.Findings["df_net_per_ch"], r.Findings["dc_net_per_ch"])
	}
	if r.Findings["df_heat_credit"] <= 0 {
		t.Errorf("heat credit = %v", r.Findings["df_heat_credit"])
	}
}

func TestE15ShapeQuick(t *testing.T) {
	r := E15DemandResponse(quick())
	if r.Findings["shed_fraction"] < 0.3 {
		t.Errorf("shed fraction = %v, want substantial load shedding", r.Findings["shed_fraction"])
	}
	if r.Findings["min_temp_dr"] < 17 {
		t.Errorf("rooms fell to %v °C during DR; inertia should carry them", r.Findings["min_temp_dr"])
	}
	drop := 1 - r.Findings["core_h_with_dr"]/r.Findings["core_h_without_dr"]
	if drop > 0.15 {
		t.Errorf("weekly compute output dropped %v; DR windows are only 2h/day", drop)
	}
}

func TestE16ShapeQuick(t *testing.T) {
	r := E16ContentDelivery(quick())
	if r.Findings["hit_big"] < 0.5 {
		t.Errorf("big-cache hit rate = %v", r.Findings["hit_big"])
	}
	if r.Findings["hit_0"] != 0 {
		t.Errorf("pass-through arm produced hits: %v", r.Findings["hit_0"])
	}
	if r.Findings["median_big"] >= r.Findings["median_0"] {
		t.Errorf("cache did not cut median latency: %v vs %v",
			r.Findings["median_big"], r.Findings["median_0"])
	}
	if r.Findings["origin_big"] >= r.Findings["origin_0"]*0.6 {
		t.Errorf("cache did not cut backhaul: %v vs %v",
			r.Findings["origin_big"], r.Findings["origin_0"])
	}
}

func TestA5ShapeQuick(t *testing.T) {
	r := AblationClimate(quick())
	st, pa, se := r.Findings["cap_stockholm"], r.Findings["cap_paris"], r.Findings["cap_seville"]
	if !(st > pa && pa > se) {
		t.Errorf("capacity ordering broken: stockholm %v, paris %v, seville %v", st, pa, se)
	}
	for _, city := range []string{"stockholm", "paris", "seville"} {
		if r.Findings["inband_"+city] < 0.7 {
			t.Errorf("%s comfort = %v; heating must work everywhere", city, r.Findings["inband_"+city])
		}
	}
}

func TestE17Shape(t *testing.T) {
	r := E17MarketSizing(quick())
	// 9M × 3 × 16 = 432M installed cores; winter monetisation 0.47.
	if r.Findings["installed_cores"] != 432e6 {
		t.Errorf("installed cores = %v", r.Findings["installed_cores"])
	}
	// The paper's claim direction: the electric stock beats Amazon's fleet
	// in winter even after monetisation discounting.
	if r.Findings["amazon_x"] < 1 {
		t.Errorf("winter fleet only %vx Amazon", r.Findings["amazon_x"])
	}
	if r.Findings["summer_cores"] >= r.Findings["winter_cores"]/3 {
		t.Errorf("summer fleet %v not far below winter %v",
			r.Findings["summer_cores"], r.Findings["winter_cores"])
	}
}

func TestE18ChaosQuick(t *testing.T) {
	r := E18Chaos(quick())
	if r.Findings["conservation_ok"] != 1 {
		t.Error("request-conservation ledgers did not balance under chaos")
	}
	clean, worst := r.Findings["served_frac_clean"], r.Findings["served_frac_worst"]
	if clean < 0.99 {
		t.Errorf("fault-free served fraction = %v, want ~1", clean)
	}
	if worst < 0.5 {
		t.Errorf("worst-case served fraction = %v; degradation not graceful", worst)
	}
	if worst > clean {
		t.Errorf("chaos improved service? clean %v, worst %v", clean, worst)
	}
}

func TestResultWrite(t *testing.T) {
	r := E2PUE(quick())
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E2") || !strings.Contains(out, "PUE") {
		t.Errorf("result output incomplete:\n%s", out)
	}
}

// TestAllQuick executes every registered experiment in quick mode to catch
// panics and empty outputs; detailed shape assertions live in the
// dedicated tests above and in the full-fidelity bench harness.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Run(quick())
			if len(r.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range r.Tables {
				if tab.Len() == 0 {
					t.Errorf("%s produced an empty table", e.ID)
				}
				if err := tab.Write(io.Discard); err != nil {
					t.Errorf("%s table write failed: %v", e.ID, err)
				}
			}
		})
	}
}
