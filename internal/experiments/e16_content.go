package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/units"
)

// E16ContentDelivery exercises the §II-A "low-bandwidth neighborhood
// applications ... location-based services such as map serving": devices
// request Zipf-popular map tiles, the edge gateways cache them, and we
// sweep the cache size from pass-through (every request crosses the
// Internet) to a generous head-cache. Expected shape: latency and origin
// backhaul fall steeply with the first megabytes of cache (Zipf head),
// with diminishing returns after — the CDN-at-the-edge claim (§V).
func E16ContentDelivery(o Options) *Result {
	res := newResult("E16 map serving from gateway caches")
	horizon := sim.Day
	tiles := 20000
	rate := 8.0
	if o.Quick {
		horizon = 6 * sim.Hour
		tiles = 5000
	}
	caps := []units.Byte{0, 2 * units.MB, 16 * units.MB, 128 * units.MB}

	type arm struct {
		medianMs, p99Ms, hitRate float64
		originMB                 float64
		served                   int64
	}
	arms := make([]arm, len(caps))
	fanout(len(caps), func(i int) {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 3
		cfg.RoomsPerBuilding = 4
		c := city.Build(cfg)
		c.MW.EnableContentCache(caps[i], c.DCNode)
		c.StartMapTraffic(horizon, tiles, rate)
		c.Run(horizon + sim.Hour)
		s := &c.MW.Content
		arms[i] = arm{
			medianMs: s.Latency.Median() * 1000,
			p99Ms:    s.Latency.P99() * 1000,
			hitRate:  s.HitRate(),
			originMB: s.OriginBytes / 1e6,
			served:   s.Served.Value(),
		}
	})

	t := report.NewTable("per-gateway cache size sweep (Zipf(1.0) tiles)",
		"cache", "served", "hit rate", "median ms", "p99 ms", "origin MB")
	for i, cp := range caps {
		a := arms[i]
		t.Row(cp.String(), a.served, a.hitRate, a.medianMs, a.p99Ms, a.originMB)
	}
	res.Tables = append(res.Tables, t)

	res.Findings["hit_0"] = arms[0].hitRate
	res.Findings["hit_big"] = arms[len(arms)-1].hitRate
	res.Findings["median_0"] = arms[0].medianMs
	res.Findings["median_big"] = arms[len(arms)-1].medianMs
	res.Findings["origin_0"] = arms[0].originMB
	res.Findings["origin_big"] = arms[len(arms)-1].originMB
	res.Notes = append(res.Notes, fmt.Sprintf(
		"a %s gateway cache turns %.0f%% of map requests into LAN responses, cutting median latency %.0f→%.0f ms and origin backhaul %.0f→%.0f MB — the neighborhood-application case of §II-A",
		caps[len(caps)-1].String(), arms[len(arms)-1].hitRate*100,
		arms[0].medianMs, arms[len(arms)-1].medianMs,
		arms[0].originMB, arms[len(arms)-1].originMB))
	return res
}
