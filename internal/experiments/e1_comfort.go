package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
)

// E1Fig4Comfort reproduces Figure 4: the average indoor temperature of
// DF-heated rooms from November to May. The paper's measured curve sits in
// a 20–25 °C band; the claim under test is that compute-driven heating
// holds the comfort band through the season.
func E1Fig4Comfort(o Options) *Result {
	res := newResult("E1 Fig.4 monthly mean indoor temperature (Nov–May)")
	cfg := city.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Calendar = sim.NovemberStart
	cfg.ControlPeriod = 120
	horizon := 7 * 30.4 * sim.Day // November through May
	if o.Quick {
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 4
		cfg.ControlPeriod = 300
		horizon = 3 * 30.4 * sim.Day
	}
	c := city.Build(cfg)
	// A standing DCC backlog keeps the heaters busy, as on the real
	// platform (render customers): heat demand is met by computing.
	stop := c.SaturateDCC(1800, cfg.Buildings*cfg.RoomsPerBuilding*24)
	defer stop()
	c.Run(horizon)

	months, means := c.MonthlyComfort()
	t := report.NewTable("Fig.4: mean indoor temperature by month", "month", "mean °C")
	minT, maxT := 100.0, -100.0
	for i, m := range months {
		t.Row(m, means[i])
		if means[i] < minT {
			minT = means[i]
		}
		if means[i] > maxT {
			maxT = means[i]
		}
	}
	res.Tables = append(res.Tables, t)

	inBand := 0.0
	rooms := c.Rooms()
	for _, r := range rooms {
		inBand += r.Comfort.InBandFraction()
	}
	inBand /= float64(len(rooms))
	res.Findings["min_month_mean"] = minT
	res.Findings["max_month_mean"] = maxT
	res.Findings["in_band_fraction"] = inBand
	res.Findings["resistor_kwh"] = c.ResistorEnergy().KWh()
	res.Notes = append(res.Notes,
		fmt.Sprintf("monthly means span %.1f–%.1f °C (paper Fig.4: ~20–25 °C); occupied in-band fraction %.2f; backup resistor %.0f kWh",
			minT, maxT, inBand, c.ResistorEnergy().KWh()))
	return res
}
