package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/weather"
)

// AblationClimate sweeps the deployment climate — the paper's concluding
// market question ("the market size of electric heating ... electric
// heating is not the dominant system in Europe"): the same fleet deployed
// in Stockholm, Paris and Seville monetises very different fractions of
// its capacity. Cold markets turn compute into useful heat; hot ones idle
// at the service floor.
func AblationClimate(o Options) *Result {
	res := newResult("A5 deployment climate: Stockholm vs Paris vs Seville")
	days := 30 * sim.Day
	if o.Quick {
		days = 10 * sim.Day
	}
	climates := []struct {
		name string
		c    weather.Climate
	}{
		{"stockholm", weather.Stockholm},
		{"paris", weather.Paris},
		{"seville", weather.Seville},
	}

	type arm struct {
		capFrac  float64
		heatKWh  float64
		resistor float64
		inBand   float64
	}
	arms := make([]arm, len(climates))
	fanout(len(climates), func(i int) {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Climate = climates[i].c
		cfg.Calendar = sim.JanuaryStart
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 5
		// Properly sized rooms everywhere (a 500 W Q.rad cannot carry an
		// old-building room through a Stockholm January — deployments
		// size to the local design load), and shallow setbacks (cold-
		// climate practice is near-continuous heating; deep setbacks
		// cannot be recovered from at −10 °C). The sweep then isolates
		// how much of the fleet's capacity each climate monetises.
		cfg.RoomSpec = thermal.Apartment
		cfg.SetbackSetpoint = 19.5
		c := city.Build(cfg)
		stop := c.SaturateDCC(1800, 96)
		defer stop()
		c.Run(days)
		_, _, heat := c.Fleet.Energy(c.Engine.Now())
		inBand := 0.0
		for _, r := range c.Rooms() {
			inBand += r.Comfort.InBandFraction()
		}
		arms[i] = arm{
			capFrac:  c.CapacitySeries.Mean() / c.Fleet.MaxCapacity(),
			heatKWh:  heat.KWh(),
			resistor: c.ResistorEnergy().KWh(),
			inBand:   inBand / float64(len(c.Rooms())),
		}
	})

	t := report.NewTable("one January month, same fleet, three cities",
		"city", "mean capacity frac", "compute heat kWh", "resistor kWh", "comfort in-band")
	for i, cl := range climates {
		a := arms[i]
		t.Row(cl.name, a.capFrac, a.heatKWh, a.resistor, a.inBand)
		res.Findings["cap_"+cl.name] = a.capFrac
		res.Findings["inband_"+cl.name] = a.inBand
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"winter capacity fraction: stockholm %.2f > paris %.2f > seville %.2f — deploy where the heating market is, the paper's closing caveat quantified",
		arms[0].capFrac, arms[1].capFrac, arms[2].capFrac))
	return res
}
