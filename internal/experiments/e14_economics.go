package experiments

import (
	"fmt"

	"df3/internal/pricing"
	"df3/internal/report"
	"df3/internal/rng"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/units"
)

// E14Economics quantifies the §II-A economic argument (deferred in the
// paper to Liu et al. [6]): the same batch campaign costs the DF operator
// residential-rate electricity but earns a heat credit (the hosts' heating
// it displaces), while the datacenter pays industrial rates on 1.5× the IT
// energy and its heat is worthless. Reported as cost per core-hour and a
// simple P&L at spot compute prices.
func E14Economics(o Options) *Result {
	res := newResult("E14 operator economics: DF fleet vs datacenter")
	frames := 20000
	nDF, nDC := 24, 12
	if o.Quick {
		frames, nDF, nDC = 2000, 8, 4
	}
	cal := sim.JanuaryStart

	type outcome struct {
		coreHours float64
		elecCost  float64
		heatKWh   float64
	}
	run := func(spec server.Spec, n int, tariff pricing.Tariff, useFacility bool) outcome {
		e := sim.New()
		var fleet server.Fleet
		var machines []*server.Machine
		meters := make([]*pricing.CostMeter, n)
		for i := 0; i < n; i++ {
			m := spec.Build(e, fmt.Sprintf("m-%d", i))
			machines = append(machines, m)
			fleet.Add(m)
			meters[i] = &pricing.CostMeter{Tariff: tariff}
		}
		pool := sched.NewPool(e, sched.FCFS, machines)
		stream := rng.New(o.Seed)
		done, total := 0, 0.0
		for i := 0; i < frames; i++ {
			w := stream.Pareto(120, 2.2)
			total += w
			t := &server.Task{Work: w}
			t.OnDone = func(sim.Time) { done++ }
			pool.Submit(t, 0, nil)
		}
		// Sample each machine's draw on a coarse tick for cost metering
		// (draw only changes at task boundaries; 60 s sampling is exact
		// enough for tariff pricing).
		tick := e.Domain(60).Subscribe(func(now sim.Time) {
			for i, m := range machines {
				d := float64(m.Draw())
				if useFacility {
					d *= 1 + m.Model.CoolingOverhead
				}
				meters[i].Update(now, units.Watt(d))
			}
		})
		// Meter only while the campaign runs: the fleet is handed back (or
		// sold to the next customer) at completion.
		for e.Now() < 60*sim.Day && done < frames {
			e.Run(e.Now() + sim.Hour)
		}
		tick.Stop()
		if done != frames {
			panic("experiments: economics campaign incomplete")
		}
		cost := 0.0
		for i, m := range meters {
			m.Flush(e.Now())
			cost += m.Cost()
			_ = i
		}
		_, _, heat := fleet.Energy(e.Now())
		return outcome{coreHours: total / 3600, elecCost: cost, heatKWh: heat.KWh()}
	}

	resTariff := pricing.ResidentialTariff(cal)
	indTariff := pricing.IndustrialTariff(cal)
	df := run(server.QradSpec(), nDF, resTariff, true)
	dc := run(server.DatacenterNodeSpec(), nDC, indTariff, true)

	// Heat credit: the operator's hosts would otherwise have produced that
	// heat with resistive heaters at the residential mean rate.
	meanRate := (resTariff.Peak + resTariff.OffPeak) / 2
	dfCredit := pricing.HeatCreditValue(kwhToJoule(df.heatKWh), meanRate)

	// Both operators sell the campaign at the same spot compute price.
	curve := pricing.DefaultSpotCurve()
	revenue := func(coreHours float64) float64 { return coreHours * curve.Price(0.6) }

	dfPnL := pricing.PnL{ComputeRevenue: revenue(df.coreHours), HeatCredit: dfCredit, ElectricityCost: df.elecCost}
	dcPnL := pricing.PnL{ComputeRevenue: revenue(dc.coreHours), ElectricityCost: dc.elecCost}

	t := report.NewTable("same campaign, two operators",
		"operator", "core-hours", "electricity €", "heat credit €", "revenue €", "net €", "net €/core-h")
	t.Row("DF fleet (residential tariff)", df.coreHours, df.elecCost, dfCredit,
		dfPnL.ComputeRevenue, dfPnL.Net(), dfPnL.Net()/df.coreHours)
	t.Row("datacenter (industrial tariff)", dc.coreHours, dc.elecCost, 0.0,
		dcPnL.ComputeRevenue, dcPnL.Net(), dcPnL.Net()/dc.coreHours)
	res.Tables = append(res.Tables, t)

	res.Findings["df_net_per_ch"] = dfPnL.Net() / df.coreHours
	res.Findings["dc_net_per_ch"] = dcPnL.Net() / dc.coreHours
	res.Findings["df_heat_credit"] = dfCredit
	res.Notes = append(res.Notes, fmt.Sprintf(
		"net €/core-hour: DF %.4f vs datacenter %.4f — the heat credit (€%.0f) turns residential-rate electricity into an advantage, the [6] economics in miniature",
		dfPnL.Net()/df.coreHours, dcPnL.Net()/dc.coreHours, dfCredit))
	return res
}

// kwhToJoule converts kWh back to joules for the credit helper.
func kwhToJoule(kwh float64) units.Joule { return units.Joule(kwh * 3.6e6) }
