package experiments

import (
	"fmt"

	"df3/internal/pricing"
	"df3/internal/report"
)

// E17MarketSizing reproduces the paper's concluding arithmetic: France's
// 9 M electrically heated households against Amazon's 2 M servers, with
// the seasonal monetisation fractions measured by E6 rather than assumed.
// Today's reality check is included: the paper reports the French DF park
// at ~30 000 cores, i.e. a 10⁻⁴ penetration of the potential.
func E17MarketSizing(o Options) *Result {
	res := newResult("E17 market sizing: French electric heating vs hyperscale")
	_ = o // pure arithmetic; no simulation, no randomness

	const amazonServers = 2e6
	const amazonCoresPerServer = 16

	t := report.NewTable("penetration scenarios (France, 9M electric households)",
		"penetration", "installed cores", "winter sellable", "summer sellable", "× Amazon (winter)")
	for _, pen := range []float64{0.0001, 0.001, 0.01, 0.1, 1.0} {
		m := pricing.FranceMarket()
		m.Penetration = pen
		w, s := m.SellableCores()
		t.Row(fmt.Sprintf("%.2f%%", pen*100), m.PotentialCores(), w, s,
			m.AmazonEquivalents(amazonServers, amazonCoresPerServer))
	}
	res.Tables = append(res.Tables, t)

	full := pricing.FranceMarket()
	w, s := full.SellableCores()
	res.Findings["installed_cores"] = full.PotentialCores()
	res.Findings["winter_cores"] = w
	res.Findings["summer_cores"] = s
	res.Findings["amazon_x"] = full.AmazonEquivalents(amazonServers, amazonCoresPerServer)

	today := pricing.FranceMarket()
	today.Penetration = 30000 / today.PotentialCores() // the paper's 30k-core park
	res.Notes = append(res.Notes, fmt.Sprintf(
		"full conversion of the French electric stock: %s — %.1f× Amazon's 2M servers in winter, but only %.1fM cores in summer (the §IV seasonality); today's park (30k cores) is a %.5f%% penetration",
		full.String(), full.AmazonEquivalents(amazonServers, amazonCoresPerServer),
		s/1e6, today.Penetration*100))
	return res
}
