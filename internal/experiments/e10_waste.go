package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/units"
)

// E10WasteHeat quantifies §III-A/§III-C: on-demand heaters produce no
// waste heat (they simply power off), while an always-on boiler dumps its
// heat in summer — "with a boiler that always generates heat, the
// intensity of the waste heat rejected will be more important".
func E10WasteHeat(o Options) *Result {
	res := newResult("E10 waste heat: heaters vs boilers, summer vs winter")
	days := 30 * sim.Day
	if o.Quick {
		days = 10 * sim.Day
	}

	run := func(summer bool, boilers int, alwaysOn bool) (wastedKWh, usefulKWh, resistorKWh float64) {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 5
		cfg.BoilerBuildings = boilers
		cfg.AlwaysOnBoilers = alwaysOn
		cfg.HeatingSeasonFirst = 10
		cfg.HeatingSeasonLast = 4
		if summer {
			cfg.Calendar = sim.Calendar{StartDayOfYear: 6 * 365.0 / 12} // July 1st
		} else {
			cfg.Calendar = sim.JanuaryStart
		}
		c := city.Build(cfg)
		stop := c.SaturateDCC(1800, 128)
		defer stop()
		c.Run(days)
		_, _, heat := c.Fleet.Energy(c.Engine.Now())
		wasted := c.WastedBoilerHeat()
		// For heaters, all delivered heat lands in rooms on demand; waste
		// is zero by construction (machines power off with demand).
		return wasted.KWh(), heat.KWh() - wasted.KWh(), c.ResistorEnergy().KWh()
	}

	t := report.NewTable("30-day heat accounting (kWh)",
		"season", "platform", "wasted", "useful", "resistor top-up", "UHI °C (district)")
	type arm struct {
		season   string
		summer   bool
		boilers  int
		alwaysOn bool
		name     string
	}
	arms := []arm{
		{"winter", false, 0, false, "heaters on-demand"},
		{"winter", false, 2, false, "boilers regulated"},
		{"winter", false, 2, true, "boilers always-on"},
		{"summer", true, 0, false, "heaters on-demand"},
		{"summer", true, 2, false, "boilers regulated"},
		{"summer", true, 2, true, "boilers always-on"},
	}
	type outcome struct{ w, u, r float64 }
	outs := make([]outcome, len(arms))
	fanout(len(arms), func(i int) {
		a := arms[i]
		w, u, r := run(a.summer, a.boilers, a.alwaysOn)
		outs[i] = outcome{w, u, r}
	})
	for i, a := range arms {
		// Convert 30 days of dumped kWh into a mean rejected power and a
		// §III-A urban-heat-island screening number over a 200×200 m
		// district block.
		meanRejectedW := outs[i].w * 1000 / (30 * 24)
		uhi := thermal.UHIIntensity(units.Watt(meanRejectedW), 200*200)
		t.Row(a.season, a.name, outs[i].w, outs[i].u, outs[i].r, float64(uhi))
		key := a.season + "_" + a.name
		res.Findings["waste:"+key] = outs[i].w
		res.Findings["uhi:"+key] = float64(uhi)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"summer waste: heaters %.0f kWh, regulated boilers %.0f kWh, always-on boilers %.0f kWh — the §III-C ordering",
		res.Findings["waste:summer_heaters on-demand"],
		res.Findings["waste:summer_boilers regulated"],
		res.Findings["waste:summer_boilers always-on"]))
	return res
}
