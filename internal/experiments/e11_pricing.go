package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/pricing"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/thermal"
)

// E11Pricing derives the §IV seasonal spot-price series from the fleet's
// monthly availability and bills a constant-demand customer on it: winter
// capacity surplus produces a winter discount, summer scarcity a premium.
func E11Pricing(o Options) *Result {
	res := newResult("E11 seasonal spot pricing")
	horizon := sim.Year
	cfg := city.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Calendar = sim.JanuaryStart
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 5
	cfg.ControlPeriod = 300
	cfg.HeatingSeasonFirst = 10
	cfg.HeatingSeasonLast = 4
	cfg.RoomSpec = thermal.OldBuilding // demand-matched rooms, as in E6
	if o.Quick {
		horizon = 150 * sim.Day
	}
	c := city.Build(cfg)
	stop := c.SaturateDCC(1800, 128)
	defer stop()
	c.Run(horizon)

	months, means := c.CapacitySeries.Bucket(func(t float64) int {
		return cfg.Calendar.MonthOfYear(t)
	})
	curve := pricing.DefaultSpotCurve()
	ledger := pricing.NewLedger(curve, pricing.DefaultSLAs())
	max := c.Fleet.MaxCapacity()

	t := report.NewTable("monthly availability and spot price",
		"month", "availability", "spot €/core-h", "assured €/core-h")
	var winterP, summerP []float64
	slas := pricing.DefaultSLAs()
	for i, m := range months {
		avail := means[i] / max
		p := curve.Price(avail)
		t.Row(m, avail, p, p*slas[pricing.Assured].PriceMultiplier)
		// Bill a constant 100-core customer for the month at this price.
		if _, err := ledger.Bill(pricing.Spot, 100*730, avail); err != nil {
			panic(err)
		}
		switch {
		case m == 12 || m <= 2:
			winterP = append(winterP, p)
		case m >= 6 && m <= 8:
			summerP = append(summerP, p)
		}
	}
	res.Tables = append(res.Tables, t)

	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	res.Findings["winter_price"] = mean(winterP)
	res.Findings["summer_price"] = mean(summerP)
	res.Findings["revenue"] = ledger.Revenue()
	if mean(winterP) > 0 && len(summerP) > 0 {
		res.Findings["seasonal_spread"] = mean(summerP) / mean(winterP)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"winter spot %.4f €/core-h vs summer %.4f (spread %.2fx); year revenue for a 100-core spot customer: €%.0f",
			mean(winterP), mean(summerP), mean(summerP)/mean(winterP), ledger.Revenue()))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"winter spot %.4f €/core-h (quick run has no summer months); revenue €%.0f",
			mean(winterP), ledger.Revenue()))
	}
	return res
}
