package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/cluster"
	"df3/internal/metrics"
	"df3/internal/offload"
	"df3/internal/regulator"
	"df3/internal/report"
	"df3/internal/rng"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/weather"
	"df3/internal/workload"
)

// AblationRegulator compares the bang-bang hysteresis thermostat against
// the proportional-band DVFS regulator (§III-B) on a fixed setpoint, so
// controller behaviour is not masked by schedule swings. The proportional
// controller should hold temperature with less variance and far fewer
// machine power transitions (each transition is a DVFS reconfiguration —
// jitter for whatever computes on the machine).
func AblationRegulator(o Options) *Result {
	res := newResult("A1 regulator: hysteresis vs proportional band")
	days := 10 * sim.Day
	if o.Quick {
		days = 4 * sim.Day
	}
	run := func(th func() regulator.Thermostat) (std, switches float64) {
		e := sim.New()
		gen := weather.New(weather.Paris, sim.NovemberStart, o.Seed)
		var temps metrics.Stats
		transitions := 0
		const rooms = 6
		machines := make([]*server.Machine, rooms)
		lastBudget := make([]float64, rooms)
		for i := 0; i < rooms; i++ {
			z := thermal.NewZone(thermal.OldBuilding)
			z.Temp = 21
			m := server.QradSpec().Build(e, "m")
			machines[i] = m
			for k := 0; k < m.Cores; k++ {
				m.Start(&server.Task{Work: 1e12})
			}
			loop := &regulator.HeaterLoop{
				Zone: z, Machine: m, Thermostat: th(),
				Schedule: regulator.ConstantSchedule(21),
				Weather:  gen, Backup: true,
			}
			loop.Start(e, 60)
			i := i
			e.Domain(60).Subscribe(func(now sim.Time) {
				temps.Observe(float64(z.Temp))
				// Count big power swings (≥ 20% of max draw): each is a
				// DVFS/core reconfiguration felt by whatever computes on
				// the machine. The proportional controller trims budgets
				// in small steps; hysteresis slams 0 ↔ 100%.
				b := float64(m.Budget())
				if diff := b - lastBudget[i]; diff > 100 || diff < -100 {
					transitions++
				}
				lastBudget[i] = b
			})
		}
		e.Run(days)
		return temps.StdDev(), float64(transitions) / rooms / (days / sim.Day)
	}
	hStd, hSw := run(func() regulator.Thermostat { return &regulator.Hysteresis{Band: 0.4} })
	pStd, pSw := run(func() regulator.Thermostat { return regulator.Proportional{Band: 0.8} })
	t := report.NewTable("thermostat comparison (constant 21 °C setpoint)",
		"controller", "temp stddev K", "large power swings /room/day")
	t.Row("hysteresis ±0.4K", hStd, hSw)
	t.Row("proportional ±0.8K", pStd, pSw)
	res.Tables = append(res.Tables, t)
	res.Findings["hyst_std"] = hStd
	res.Findings["prop_std"] = pStd
	res.Findings["hyst_switches"] = hSw
	res.Findings["prop_switches"] = pSw
	res.Notes = append(res.Notes, fmt.Sprintf(
		"proportional: stddev %.3f K, %.1f large swings/room/day; hysteresis: %.3f K, %.1f",
		pStd, pSw, hStd, hSw))
	return res
}

// AblationClustering compares the §III-B cluster-formation options on the
// city's site layout: per-building, geographic grid, and k-means.
func AblationClustering(o Options) *Result {
	res := newResult("A2 cluster formation: building vs grid vs k-means")
	cfg := city.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Buildings = 9
	cfg.RoomsPerBuilding = 8
	if o.Quick {
		cfg.Buildings = 6
	}
	c := city.Build(cfg)
	sites := c.Sites()

	rows := []struct {
		name string
		a    cluster.Assignment
	}{
		{"per-building", cluster.PerBuilding(sites)},
		// A grid aligned with the street plan recovers buildings; a
		// coarse one merges several buildings into one cluster, paying
		// intra-cluster distance (longer gateway-to-worker paths).
		{"grid-400m", cluster.Grid(sites, 400)},
		{"grid-900m", cluster.Grid(sites, 900)},
		// k-means with the right k rediscovers the buildings without
		// being told about them; with too small a k it must merge.
		{"k-means k=B", cluster.KMeans(sites, cfg.Buildings, rng.New(o.Seed), 50)},
		{"k-means k=B/2", cluster.KMeans(sites, cfg.Buildings/2, rng.New(o.Seed), 50)},
	}

	t := report.NewTable("clustering quality on the city layout",
		"method", "clusters", "mean intra-distance m", "size imbalance")
	for _, row := range rows {
		t.Row(row.name, len(row.a),
			cluster.MeanIntraDistance(sites, row.a),
			cluster.SizeImbalance(row.a))
		res.Findings["intra_"+row.name] = cluster.MeanIntraDistance(sites, row.a)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"per-building clustering is optimal by construction (workers are co-located); k-means with k = #buildings rediscovers it blind, while coarse grids and undersized k merge buildings and pay metro-scale intra-cluster distances")
	return res
}

// AblationEDF compares EDF against FCFS edge queueing as a pure queueing
// experiment: no DCC competition, delay-only offloading, and a *mixed*
// deadline population — urgent alarms (600 ms) interleaved with lax
// analytics (30 s). With a single deadline class EDF degenerates to FCFS;
// the heterogeneity is where the discipline earns its keep: EDF slips the
// lax work to rescue the urgent, FCFS lets alarms expire behind analytics.
func AblationEDF(o Options) *Result {
	res := newResult("A3 edge queue discipline: EDF vs FCFS")
	horizon := sim.Day
	if o.Quick {
		horizon = 8 * sim.Hour
	}
	run := func(policy sched.Policy) (miss float64, p99 float64) {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 3
		cfg.Middleware.EdgePolicy = policy
		cfg.Middleware.Offload = offload.DelayPolicy{}
		cfg.Middleware.EdgeQueueCap = 0 // unbounded: the discipline decides
		c := city.Build(cfg)
		for bi, b := range c.Buildings {
			b := b
			submit := func(r workload.EdgeRequest) {
				c.MW.SubmitEdge(b.Cluster, b.Rooms[r.Device].Node, r)
			}
			urgent := workload.DefaultEdgeGen(rng.New(o.Seed).Fork(uint64(bi)), len(b.Rooms))
			urgent.Deadline = 0.6
			urgent.BurstRate = 20
			urgent.Start(c.Engine, horizon, submit)
			lax := workload.DefaultEdgeGen(rng.New(o.Seed).Fork(uint64(100+bi)), len(b.Rooms))
			lax.MeanWork = 0.5 // heavyweight analytics queries
			lax.Deadline = 30
			lax.CalmRate = 2.5
			lax.BurstRate = 25
			lax.Start(c.Engine, horizon, submit)
		}
		c.Run(horizon + sim.Hour)
		return c.MW.Edge.MissRate(), c.MW.Edge.Latency.P99() * 1000
	}
	fm, fp := run(sched.FCFS)
	em, ep := run(sched.EDF)
	t := report.NewTable("edge queueing under spike load",
		"discipline", "miss rate", "p99 ms")
	t.Row("fcfs", fm, fp)
	t.Row("edf", em, ep)
	res.Tables = append(res.Tables, t)
	res.Findings["fcfs_miss"] = fm
	res.Findings["edf_miss"] = em
	res.Notes = append(res.Notes, fmt.Sprintf("miss rate: EDF %.3f vs FCFS %.3f", em, fm))
	return res
}

// AblationBoilerBuffer sweeps the boiler water-buffer mass: small buffers
// saturate and waste heat, big buffers smooth compute through troughs.
func AblationBoilerBuffer(o Options) *Result {
	res := newResult("A4 boiler thermal buffer size")
	days := 10 * sim.Day
	masses := []float64{200, 800, 2000, 6000}
	if o.Quick {
		days = 4 * sim.Day
		masses = []float64{200, 2000}
	}
	t := report.NewTable("buffer mass sweep (winter, saturated compute)",
		"water kg", "wasted kWh", "mean capacity frac", "comfort in-band")
	for _, kg := range masses {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 1
		cfg.RoomsPerBuilding = 6
		cfg.BoilerBuildings = 1
		c := city.Build(cfg)
		// Override the plant's buffer before anything runs.
		c.Buildings[0].Boiler.Loop.C = 4186 * kg
		stop := c.SaturateDCC(1800, 64)
		c.Run(days)
		stop()
		wasted := c.WastedBoilerHeat().KWh()
		capFrac := c.CapacitySeries.Mean() / c.Fleet.MaxCapacity()
		inBand := 0.0
		for _, r := range c.Rooms() {
			inBand += r.Comfort.InBandFraction()
		}
		inBand /= float64(len(c.Rooms()))
		t.Row(kg, wasted, capFrac, inBand)
		res.Findings[fmt.Sprintf("waste_%g", kg)] = wasted
		res.Findings[fmt.Sprintf("cap_%g", kg)] = capFrac
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"a regulated boiler never wastes heat in winter regardless of buffer size (the building draws everything); the buffer's value is capacity smoothing — bigger tanks ride demand troughs without throttling the rack")
	return res
}
