package experiments

import (
	"fmt"

	"df3/internal/baseline"
	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
)

// E8EdgeLatency measures the latency distribution of the three §II-C
// service paths on identical workloads: direct local requests (device and
// DF server share a room), indirect requests through the edge gateway, and
// the cloud-only path across the Internet. Expected shape: direct <
// indirect ≪ cloud, with the cloud penalty set by Internet RTT.
func E8EdgeLatency(o Options) *Result {
	res := newResult("E8 edge latency: direct vs indirect vs cloud")
	horizon := 2 * sim.Day
	if o.Quick {
		horizon = 12 * sim.Hour
	}

	build := func() city.Config {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 3
		cfg.RoomsPerBuilding = 5
		return cfg
	}

	type row struct {
		name              string
		mean, median, p99 float64
		served            int64
		miss              float64
		note              string
	}
	var rows []row

	{ // direct
		c := city.Build(build())
		c.StartDirectEdgeTraffic(horizon, 1)
		c.Run(horizon + sim.Hour)
		e := &c.MW.Edge
		rows = append(rows, row{"direct", e.Latency.Mean() * 1000, e.Latency.Median() * 1000,
			e.Latency.P99() * 1000, e.Served.Value(), e.MissRate(),
			fmt.Sprintf("%d fallbacks", e.DirectFallbacks.Value())})
		res.Findings["direct_median_ms"] = e.Latency.Median() * 1000
	}
	{ // indirect
		c := city.Build(build())
		c.StartEdgeTraffic(horizon, 1)
		c.Run(horizon + sim.Hour)
		e := &c.MW.Edge
		rows = append(rows, row{"indirect", e.Latency.Mean() * 1000, e.Latency.Median() * 1000,
			e.Latency.P99() * 1000, e.Served.Value(), e.MissRate(), ""})
		res.Findings["indirect_median_ms"] = e.Latency.Median() * 1000
	}
	{ // cloud-only: same city, every request forced vertical
		cfg := build()
		cfg.Middleware.Offload = baseline.AlwaysVertical{}
		c := city.Build(cfg)
		c.StartEdgeTraffic(horizon, 1)
		c.Run(horizon + sim.Hour)
		e := &c.MW.Edge
		rows = append(rows, row{"cloud-only", e.Latency.Mean() * 1000, e.Latency.Median() * 1000,
			e.Latency.P99() * 1000, e.Served.Value(), e.MissRate(), "via Internet to DC"})
		res.Findings["cloud_median_ms"] = e.Latency.Median() * 1000
	}

	t := report.NewTable("edge service paths on the alarm-detection workload",
		"path", "mean ms", "median ms", "p99 ms", "served", "miss rate", "note")
	for _, r := range rows {
		t.Row(r.name, r.mean, r.median, r.p99, r.served, r.miss, r.note)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"median latency: direct %.1f ms < indirect %.1f ms < cloud %.1f ms",
		res.Findings["direct_median_ms"], res.Findings["indirect_median_ms"], res.Findings["cloud_median_ms"]))
	return res
}
