package experiments

import (
	"fmt"

	"df3/internal/baseline"
	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
)

// E8EdgeLatency measures the latency distribution of the three §II-C
// service paths on identical workloads: direct local requests (device and
// DF server share a room), indirect requests through the edge gateway, and
// the cloud-only path across the Internet. Expected shape: direct <
// indirect ≪ cloud, with the cloud penalty set by Internet RTT.
//
// Each path is one independent city arm: with -shards the three cities run
// in parallel on the sharded kernel, producing byte-identical results.
func E8EdgeLatency(o Options) *Result {
	res := newResult("E8 edge latency: direct vs indirect vs cloud")
	horizon := 2 * sim.Day
	if o.Quick {
		horizon = 12 * sim.Hour
	}

	base := func() city.Config {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 3
		cfg.RoomsPerBuilding = 5
		return cfg
	}

	type row struct {
		name              string
		mean, median, p99 float64
		served            int64
		miss              float64
		note              string
	}
	arms := []struct {
		name, finding string
	}{
		{"direct", "direct_median_ms"},
		{"indirect", "indirect_median_ms"},
		{"cloud-only", "cloud_median_ms"},
	}
	cities := make([]*city.City, len(arms))
	rows := make([]row, len(arms))

	runArms(o, len(arms),
		func(i int) (*sim.Engine, sim.Time) {
			cfg := base()
			if i == 2 { // cloud-only: same city, every request forced vertical
				cfg.Middleware.Offload = baseline.AlwaysVertical{}
			}
			c := city.Build(cfg)
			if i == 0 {
				c.StartDirectEdgeTraffic(horizon, 1)
			} else {
				c.StartEdgeTraffic(horizon, 1)
			}
			cities[i] = c
			return c.Engine, horizon + sim.Hour
		},
		func(i int) {
			e := &cities[i].MW.Edge
			note := ""
			switch i {
			case 0:
				note = fmt.Sprintf("%d fallbacks", e.DirectFallbacks.Value())
			case 2:
				note = "via Internet to DC"
			}
			rows[i] = row{arms[i].name, e.Latency.Mean() * 1000, e.Latency.Median() * 1000,
				e.Latency.P99() * 1000, e.Served.Value(), e.MissRate(), note}
			res.Findings[arms[i].finding] = e.Latency.Median() * 1000
		})

	t := report.NewTable("edge service paths on the alarm-detection workload",
		"path", "mean ms", "median ms", "p99 ms", "served", "miss rate", "note")
	for _, r := range rows {
		t.Row(r.name, r.mean, r.median, r.p99, r.served, r.miss, r.note)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"median latency: direct %.1f ms < indirect %.1f ms < cloud %.1f ms",
		res.Findings["direct_median_ms"], res.Findings["indirect_median_ms"], res.Findings["cloud_median_ms"]))
	return res
}
