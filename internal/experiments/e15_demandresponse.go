package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/thermal"
)

// E15DemandResponse exercises the §III-A smart-grid negotiation: during
// the evening electricity peak the grid operator asks the fleet to shed
// load. The derate hook cuts every machine's budget to 20% for two hours;
// the rooms' thermal inertia rides through with a sub-kelvin sag, and the
// displaced compute resumes afterwards — "the manager must negotiate with
// external systems (e.g. energy operators) to calibrate its energy
// consumption", demonstrated.
func E15DemandResponse(o Options) *Result {
	res := newResult("E15 smart-grid demand response")
	days := 5 * sim.Day
	if o.Quick {
		days = 3 * sim.Day
	}
	// DR window: 18:00–20:00 every day.
	inDR := func(t sim.Time) bool {
		h := sim.NovemberStart.HourOfDay(t)
		return h >= 18 && h < 20
	}

	run := func(withDR bool) (drawDR, drawRef float64, minTemp float64, coreH float64, inBand float64) {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 5
		cfg.RoomSpec = thermal.OldBuilding
		if withDR {
			cfg.Derate = func(t sim.Time) float64 {
				if inDR(t) {
					return 0.2
				}
				return 1
			}
		}
		c := city.Build(cfg)
		stop := c.SaturateDCC(1800, 96)
		defer stop()

		// Sample fleet draw inside and outside DR windows, and track the
		// lowest room temperature seen during DR.
		var sumDR, nDR, sumRef, nRef float64
		minT := 100.0
		c.Engine.Domain(300).Subscribe(func(now sim.Time) {
			draw := 0.0
			for _, m := range c.Fleet.Machines {
				draw += float64(m.Draw())
			}
			if inDR(now) {
				sumDR += draw
				nDR++
				for _, r := range c.Rooms() {
					if float64(r.Zone.Temp) < minT {
						minT = float64(r.Zone.Temp)
					}
				}
			} else {
				sumRef += draw
				nRef++
			}
		})
		c.Run(days)
		band := 0.0
		for _, r := range c.Rooms() {
			band += r.Comfort.InBandFraction()
		}
		band /= float64(len(c.Rooms()))
		return sumDR / nDR, sumRef / nRef, minT, c.MW.DCC.WorkDone / 3600, band
	}

	drDraw, refDraw, minT, coreH, band := run(true)
	base, baseRef, baseMin, baseCoreH, baseBand := run(false)

	t := report.NewTable("2h evening demand-response window (budget ×0.2)",
		"arm", "mean draw in DR W", "mean draw outside W", "min room °C in DR", "dcc core-h", "comfort in-band")
	t.Row("with DR", drDraw, refDraw, minT, coreH, band)
	t.Row("without DR", base, baseRef, baseMin, baseCoreH, baseBand)
	res.Tables = append(res.Tables, t)

	shed := 1 - drDraw/base
	res.Findings["shed_fraction"] = shed
	res.Findings["min_temp_dr"] = minT
	res.Findings["core_h_with_dr"] = coreH
	res.Findings["core_h_without_dr"] = baseCoreH
	res.Notes = append(res.Notes, fmt.Sprintf(
		"the fleet sheds %.0f%% of its in-window draw on command; rooms never fall below %.1f °C (thermal inertia), and the week's compute output drops only %.1f%%",
		shed*100, minT, 100*(1-coreH/baseCoreH)))
	return res
}
