package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/workload"
)

// E9RenderCampaign replays the paper's 2016 headline figures — 600 000
// rendered images for 11 000 000 CPU-hours — scaled down, on a winter city
// whose heaters are free to run at full demand. The check is throughput
// accounting: the fleet absorbs the campaign's core-hours at its capacity,
// and per-frame stretch stays moderate.
func E9RenderCampaign(o Options) *Result {
	res := newResult("E9 render-campaign replay (scaled 2016 campaign)")
	scale := 2000 // 300 frames, ~5500 CPU-hours
	cfg := city.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Buildings = 6
	cfg.RoomsPerBuilding = 8
	cfg.ControlPeriod = 300
	if o.Quick {
		scale = 20000 // 30 frames
		cfg.Buildings = 3
		cfg.RoomsPerBuilding = 5
	}
	c := city.Build(cfg)
	job := workload.RenderCampaign(rng.New(o.Seed), scale)
	frames := len(job.TaskWork)
	cpuHours := job.TotalWork() / 3600
	c.SubmitCampaign(job)
	// Run until every shard completes (or 90 days cap).
	deadline := 90 * sim.Day
	for c.Engine.Now() < deadline && c.MW.DCC.TasksDone.Value() < int64(frames) {
		c.Run(c.Engine.Now() + sim.Day)
	}
	days := c.Engine.Now() / sim.Day
	it, _, heat := c.Fleet.Energy(c.Engine.Now())

	t := report.NewTable("campaign accounting",
		"metric", "value")
	t.Row("frames completed", c.MW.DCC.TasksDone.Value())
	t.Row("campaign CPU-hours", cpuHours)
	t.Row("wall days", days)
	t.Row("fleet max capacity (cores)", c.Fleet.MaxCapacity())
	t.Row("mean stretch", c.MW.DCC.JobStretch.Mean())
	t.Row("fleet IT energy (kWh)", it.KWh())
	t.Row("useful heat delivered (kWh)", heat.KWh())
	res.Tables = append(res.Tables, t)

	res.Findings["frames"] = float64(c.MW.DCC.TasksDone.Value())
	res.Findings["cpu_hours"] = cpuHours
	res.Findings["wall_days"] = days
	res.Findings["heat_kwh"] = heat.KWh()
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d frames (%0.f CPU-hours, 1/%d of the 2016 campaign) absorbed in %.1f days on %0.f cores; %.0f kWh delivered as building heat",
		frames, cpuHours, scale, days, c.Fleet.MaxCapacity(), heat.KWh()))
	return res
}
