package experiments

import (
	"strings"
	"testing"

	"df3/internal/trace"
)

// render serializes a Result exactly as df3bench prints it.
func render(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestShardedArmsByteIdentical is the experiment-level determinism
// contract: every multi-arm experiment rendered with Shards=4 must be
// byte-identical to the serial kernel. This is the quick-mode twin of the
// CI job that diffs `-shards 4` full-fidelity output against the committed
// full_bench_results.txt.
func TestShardedArmsByteIdentical(t *testing.T) {
	for _, exp := range []struct {
		id  string
		run func(Options) *Result
	}{
		{"E2", E2PUE},
		{"E8", E8EdgeLatency},
		{"E18", E18Chaos},
		{"E19", E19ShardScale},
	} {
		serial := render(t, exp.run(Options{Seed: 1, Quick: true}))
		sharded := render(t, exp.run(Options{Seed: 1, Quick: true, Shards: 4}))
		if serial != sharded {
			t.Errorf("%s: sharded output differs from serial\n--- serial ---\n%s\n--- shards=4 ---\n%s",
				exp.id, serial, sharded)
		}
	}
}

// TestE18ShardedTracingMerges: with Shards>1 each chaos scenario records
// into a private recorder merged into o.Tracer in scenario order, so the
// process list and span population match the serial tracing path.
func TestE18ShardedTracingMerges(t *testing.T) {
	serialRec := trace.NewRecorder(0)
	E18Chaos(Options{Seed: 1, Quick: true, Tracer: serialRec})
	shardRec := trace.NewRecorder(0)
	E18Chaos(Options{Seed: 1, Quick: true, Shards: 4, Tracer: shardRec})

	sp, pp := serialRec.Processes(), shardRec.Processes()
	if len(pp) != len(sp) {
		t.Fatalf("sharded tracer has %d processes, serial %d", len(pp), len(sp))
	}
	for i := range sp {
		if sp[i] != pp[i] {
			t.Errorf("process %d: sharded %q, serial %q", i, pp[i], sp[i])
		}
	}
	if len(shardRec.Spans()) != len(serialRec.Spans()) {
		t.Errorf("sharded tracer has %d spans, serial %d",
			len(shardRec.Spans()), len(serialRec.Spans()))
	}
	seen := map[uint64]bool{}
	for _, s := range shardRec.Spans() {
		if seen[uint64(s.ID)] {
			t.Fatalf("span id %d duplicated after merge", s.ID)
		}
		seen[uint64(s.ID)] = true
	}
}

// TestE19QuickDeterminism: the sweep itself reports identical checksums at
// every shard count, and the headline findings exist.
func TestE19QuickDeterminism(t *testing.T) {
	r := E19ShardScale(Options{Seed: 1, Quick: true})
	if r.Findings["identical_all"] != 1 {
		t.Fatal("E19 reports shard-dependent results")
	}
	if r.Findings["speedup_4x_2s"] <= 1 {
		t.Errorf("no parallelism at 2 shards: %v", r.Findings["speedup_4x_2s"])
	}
}
