package experiments

import (
	"fmt"

	"df3/internal/report"
	"df3/internal/rng"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
)

// E2PUE runs the same batch campaign on a DF heater fleet and on a
// classical datacenter and compares fleet PUE — the quantitative claim of
// §II-A (CloudandHeat reports 1.026; conventional rooms sit near 1.5).
// The DF fleet additionally reports the fraction of energy delivered as
// useful heat, which the datacenter rejects through its chillers.
func E2PUE(o Options) *Result {
	res := newResult("E2 PUE: DF fleet vs classical datacenter")
	nDF, nDC := 24, 12
	frames := 1200
	if o.Quick {
		nDF, nDC, frames = 8, 4, 300
	}

	runFleet := func(spec server.Spec, n int) (pue, heatFrac float64, makespan sim.Time) {
		e := sim.New()
		var fleet server.Fleet
		var machines []*server.Machine
		for i := 0; i < n; i++ {
			m := spec.Build(e, fmt.Sprintf("m-%d", i))
			machines = append(machines, m)
			fleet.Add(m)
		}
		pool := sched.NewPool(e, sched.FCFS, machines)
		stream := rng.New(o.Seed)
		done := 0
		for i := 0; i < frames; i++ {
			t := &server.Task{Work: stream.Pareto(120, 2.2)}
			t.OnDone = func(sim.Time) { done++ }
			pool.Submit(t, 0, nil)
		}
		e.Run(30 * sim.Day)
		if done != frames {
			panic(fmt.Sprintf("experiments: campaign incomplete: %d/%d", done, frames))
		}
		it, fac, heat := fleet.Energy(e.Now())
		return float64(fac) / float64(it), float64(heat) / float64(fac), e.Now()
	}

	dfPUE, dfHeat, dfSpan := runFleet(server.QradSpec(), nDF)
	boPUE, boHeat, boSpan := runFleet(server.SmallBoilerSpec(), nDF/4)
	crPUE, crHeat, crSpan := runFleet(server.CryptoHeaterSpec(), nDF)
	dcPUE, dcHeat, dcSpan := runFleet(server.DatacenterNodeSpec(), nDC)

	t := report.NewTable("PUE on an identical batch campaign",
		"platform", "PUE", "useful-heat fraction", "makespan h")
	t.Row("DF heater fleet (Q.rad)", dfPUE, dfHeat, float64(dfSpan)/3600)
	t.Row("DF boiler fleet", boPUE, boHeat, float64(boSpan)/3600)
	t.Row("DF crypto-heater fleet", crPUE, crHeat, float64(crSpan)/3600)
	t.Row("classical datacenter", dcPUE, dcHeat, float64(dcSpan)/3600)
	res.Tables = append(res.Tables, t)

	res.Findings["df_pue"] = dfPUE
	res.Findings["dc_pue"] = dcPUE
	res.Findings["df_heat_fraction"] = dfHeat
	res.Notes = append(res.Notes, fmt.Sprintf(
		"DF PUE %.3f vs datacenter %.3f (paper: 1.026 vs conventional ~1.5); DF delivers %.0f%% of energy as useful heat",
		dfPUE, dcPUE, dfHeat*100))
	return res
}
