package experiments

import (
	"fmt"

	"df3/internal/report"
	"df3/internal/rng"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
)

// E2PUE runs the same batch campaign on a DF heater fleet and on a
// classical datacenter and compares fleet PUE — the quantitative claim of
// §II-A (CloudandHeat reports 1.026; conventional rooms sit near 1.5).
// The DF fleet additionally reports the fraction of energy delivered as
// useful heat, which the datacenter rejects through its chillers.
//
// Each platform is one independent arm: with -shards the four fleets run
// in parallel on the sharded kernel, producing byte-identical results.
func E2PUE(o Options) *Result {
	res := newResult("E2 PUE: DF fleet vs classical datacenter")
	nDF, nDC := 24, 12
	frames := 1200
	if o.Quick {
		nDF, nDC, frames = 8, 4, 300
	}

	arms := []struct {
		name string
		spec server.Spec
		n    int
	}{
		{"DF heater fleet (Q.rad)", server.QradSpec(), nDF},
		{"DF boiler fleet", server.SmallBoilerSpec(), nDF / 4},
		{"DF crypto-heater fleet", server.CryptoHeaterSpec(), nDF},
		{"classical datacenter", server.DatacenterNodeSpec(), nDC},
	}
	type outcome struct {
		e             *sim.Engine
		fleet         server.Fleet
		done          int
		pue, heatFrac float64
		makespan      sim.Time
	}
	outs := make([]outcome, len(arms))

	runArms(o, len(arms),
		func(i int) (*sim.Engine, sim.Time) {
			a, out := arms[i], &outs[i]
			out.e = sim.New()
			var machines []*server.Machine
			for m := 0; m < a.n; m++ {
				mc := a.spec.Build(out.e, fmt.Sprintf("m-%d", m))
				machines = append(machines, mc)
				out.fleet.Add(mc)
			}
			pool := sched.NewPool(out.e, sched.FCFS, machines)
			stream := rng.New(o.Seed)
			for f := 0; f < frames; f++ {
				t := &server.Task{Work: stream.Pareto(120, 2.2)}
				t.OnDone = func(sim.Time) { out.done++ }
				pool.Submit(t, 0, nil)
			}
			return out.e, 30 * sim.Day
		},
		func(i int) {
			out := &outs[i]
			if out.done != frames {
				panic(fmt.Sprintf("experiments: campaign incomplete: %d/%d", out.done, frames))
			}
			it, fac, heat := out.fleet.Energy(out.e.Now())
			out.pue = float64(fac) / float64(it)
			out.heatFrac = float64(heat) / float64(fac)
			out.makespan = out.e.Now()
		})

	t := report.NewTable("PUE on an identical batch campaign",
		"platform", "PUE", "useful-heat fraction", "makespan h")
	for i, a := range arms {
		t.Row(a.name, outs[i].pue, outs[i].heatFrac, float64(outs[i].makespan)/3600)
	}
	res.Tables = append(res.Tables, t)

	dfPUE, dfHeat := outs[0].pue, outs[0].heatFrac
	dcPUE := outs[3].pue
	res.Findings["df_pue"] = dfPUE
	res.Findings["dc_pue"] = dcPUE
	res.Findings["df_heat_fraction"] = dfHeat
	res.Notes = append(res.Notes, fmt.Sprintf(
		"DF PUE %.3f vs datacenter %.3f (paper: 1.026 vs conventional ~1.5); DF delivers %.0f%% of energy as useful heat",
		dfPUE, dcPUE, dfHeat*100))
	return res
}
