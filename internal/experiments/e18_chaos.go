package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/trace"
)

func newChaosTable() *report.Table {
	return report.NewTable("graceful degradation under network chaos (alarm + batch workload)",
		"scenario", "served frac", "p99 ms", "retries", "timeouts",
		"dcc goodput", "jobs lost", "msgs lost", "outages", "balance")
}

// E18Chaos answers §III-B's "what about networks?" for the fabric itself:
// a city-scale DF3 platform rides metro and Internet links that flap and
// building networks that lose packets, so the middleware's retry/timeout
// ladder — not link perfection — has to carry the service. The experiment
// sweeps chaos intensity from none to heavy (random loss, link renewal
// failures, whole-gateway outages) on an identical workload and reports
// the served fraction, tail latency and DCC goodput at each level. The
// claim under test is graceful degradation: served fraction should fall
// smoothly with fault intensity, never cliff-edge, and the conservation
// ledgers (submitted == served + rejected, jobs == done + lost) must
// balance exactly at every level — chaos may lose messages, never
// accounting.
//
// Each chaos level is one independent city arm: with -shards the nine
// cities run in parallel on the sharded kernel with byte-identical
// results. Tracing stays shard-safe: under -shards each arm records into
// its own recorder (recorders are not concurrency-safe) and the recorders
// merge into o.Tracer, in scenario order, at collection time.
func E18Chaos(o Options) *Result {
	res := newResult("E18 chaos: graceful degradation under network faults")
	horizon := 2 * sim.Day
	if o.Quick {
		horizon = 8 * sim.Hour
	}

	type scenario struct {
		name     string
		loss     float64  // per-message loss on every wired class
		linkMTBF sim.Time // metro + LAN link renewal failures
		gwMTBF   sim.Time // whole-building gateway outages
	}
	scenarios := []scenario{
		{"no faults", 0, 0, 0},
		{"loss 0.1%", 0.001, 0, 0},
		{"loss 1%", 0.01, 0, 0},
		{"loss 5%", 0.05, 0, 0},
		{"links MTBF 8h", 0, 8 * sim.Hour, 0},
		{"links MTBF 2h", 0, 2 * sim.Hour, 0},
		{"links 2h + loss 1%", 0.01, 2 * sim.Hour, 0},
		{"gateways MTBF 12h", 0, 0, 12 * sim.Hour},
		{"heavy: loss 20% + links 1h + gw 6h", 0.2, sim.Hour, 6 * sim.Hour},
	}

	cities := make([]*city.City, len(scenarios))
	tracers := make([]*trace.Recorder, len(scenarios))
	t := newChaosTable()
	balancedAll := true
	servedFracs := make([]float64, 0, len(scenarios))

	runArms(o, len(scenarios),
		func(i int) (*sim.Engine, sim.Time) {
			s := scenarios[i]
			cfg := city.DefaultConfig()
			cfg.Seed = o.Seed
			cfg.Buildings = 3
			cfg.RoomsPerBuilding = 5
			if o.Quick {
				cfg.Buildings = 2
				cfg.RoomsPerBuilding = 4
			}
			// The resilience ladder under test: 1 s response timeout, up to 3
			// retries climbing local → horizontal → vertical, DCC payloads
			// retried on an exponential backoff.
			cfg.Middleware.ResponseTimeout = 1
			cfg.Middleware.EdgeMaxRetries = 3
			cfg.Middleware.DCCMaxRetries = 3
			cfg.Middleware.DCCRetryBackoff = 0.5
			if s.loss > 0 {
				cfg.LinkLoss = map[string]float64{
					"lan": s.loss, "metro": s.loss, "internet": s.loss, "fibre": s.loss,
				}
			}
			if s.linkMTBF > 0 {
				// Metro links flap at the given MTBF; building LANs are an
				// order steadier.
				cfg.LinkMTBF = map[string]sim.Time{
					"metro": s.linkMTBF, "lan": 10 * s.linkMTBF,
				}
			}
			cfg.GatewayMTBF = s.gwMTBF

			c := city.Build(cfg)
			if o.Tracer != nil {
				rec := o.Tracer
				if o.Shards > 1 {
					rec = trace.NewRecorder(o.Tracer.Capacity())
					tracers[i] = rec
				}
				rec.BeginProcess("E18 " + s.name)
				c.EnableTracing(rec)
			}
			c.StartEdgeTraffic(horizon, 1)
			c.StartDCCTraffic(horizon, 1.5)
			cities[i] = c
			return c.Engine, horizon + 12*sim.Hour // drain the tail
		},
		func(i int) {
			s, c := scenarios[i], cities[i]
			if tracers[i] != nil {
				o.Tracer.Merge(tracers[i])
			}
			e := &c.MW.Edge
			d := &c.MW.DCC
			servedFrac := float64(e.Served.Value()) / float64(e.Submitted.Value())
			servedFracs = append(servedFracs, servedFrac)
			balanced := e.Submitted.Value() == e.Served.Value()+e.Rejected.Value() &&
				d.JobsSubmitted.Value() == d.JobsDone.Value()+d.JobsLost.Value()
			if !balanced {
				balancedAll = false
			}
			balance := "ok"
			if !balanced {
				balance = "VIOLATED"
			}
			t.Row(s.name, servedFrac, e.Latency.P99()*1000,
				e.Retries.Value(), e.TimedOut.Value(),
				d.Throughput(horizon), d.JobsLost.Value(),
				c.MessagesLost.Value(),
				c.LinkOutages.Value()+c.GatewayOutages.Value(), balance)
		})
	res.Tables = append(res.Tables, t)

	res.Findings["served_frac_clean"] = servedFracs[0]
	worst := servedFracs[0]
	for _, f := range servedFracs {
		if f < worst {
			worst = f
		}
	}
	res.Findings["served_frac_worst"] = worst
	res.Findings["conservation_ok"] = 0
	if balancedAll {
		res.Findings["conservation_ok"] = 1
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"served fraction degrades %.4f → %.4f across the chaos sweep; conservation balanced in all %d scenarios: %v",
		servedFracs[0], worst, len(scenarios), balancedAll))
	return res
}
