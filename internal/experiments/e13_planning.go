package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/forecast"
	"df3/internal/pricing"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/thermal"
)

// E13CapacityPlanning closes the §III-C → §IV loop: fit the
// thermosensitivity model on one year of a city's heat demand, use it with
// next year's weather to *predict* monthly compute capacity, sell assured
// SLA promises against the prediction, and settle against what the fleet
// actually delivers. A prudent margin should collect assured revenue with
// few penalties; an aggressive one oversells the shoulder seasons.
func E13CapacityPlanning(o Options) *Result {
	res := newResult("E13 forecast-driven SLA capacity planning")
	horizonYears := 2
	cfg := city.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Calendar = sim.JanuaryStart
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 5
	cfg.ControlPeriod = 300
	cfg.HeatingSeasonFirst = 10
	cfg.HeatingSeasonLast = 4
	cfg.RoomSpec = thermal.OldBuilding
	if o.Quick {
		cfg.RoomsPerBuilding = 3
	}

	// One two-year run: year 1 trains, year 2 is planned and settled.
	c := city.Build(cfg)
	stop := c.SaturateDCC(1800, 128)
	defer stop()
	c.Run(sim.Time(horizonYears) * sim.Year)

	// Split the capacity and weather series into the two years.
	var trainTemp, trainCap []float64
	monthCapY2 := map[int][]float64{}
	monthTempY2 := map[int][]float64{}
	capPts := c.CapacitySeries.Points()
	outPts := c.OutdoorSeries.Points()
	max := c.Fleet.MaxCapacity()
	for i, p := range capPts {
		temp := outPts[i].V
		if p.T < sim.Year {
			trainTemp = append(trainTemp, temp)
			trainCap = append(trainCap, p.V/max)
		} else {
			m := cfg.Calendar.MonthOfYear(p.T)
			monthCapY2[m] = append(monthCapY2[m], p.V/max)
			monthTempY2[m] = append(monthTempY2[m], temp)
		}
	}

	// Fit capacity-vs-weather on year 1. Capacity rises when it gets
	// colder — the same rectified-linear shape as heat demand.
	model, err := forecast.FitThermosensitivity(trainTemp, trainCap)
	if err != nil {
		panic("experiments: capacity fit failed: " + err.Error())
	}

	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}

	settleWith := func(margin float64) (*pricing.Ledger, []pricing.Settlement) {
		ledger := pricing.NewLedger(pricing.DefaultSpotCurve(), pricing.DefaultSLAs())
		planner := pricing.Planner{Margin: margin}
		var outs []pricing.Settlement
		for m := 1; m <= 12; m++ {
			if len(monthCapY2[m]) == 0 {
				continue
			}
			// Predict month-m availability from month-m weather (the
			// operator has the seasonal forecast).
			pred := model.Predict(mean(monthTempY2[m]))
			promise := planner.Plan([]float64{pred}, max, 730)[0]
			promise.Period = m
			realised := mean(monthCapY2[m])
			s, err := ledger.Settle(promise, realised*max*730, realised)
			if err != nil {
				panic(err)
			}
			outs = append(outs, s)
		}
		return ledger, outs
	}

	prudent, prudentRows := settleWith(0.7)
	aggressive, _ := settleWith(1.1)

	t := report.NewTable("prudent planner (margin 0.7), year-2 settlements",
		"month", "promised core-h", "delivered core-h", "revenue €", "penalty €")
	for _, s := range prudentRows {
		t.Row(s.Period, s.Promised, s.Delivered, s.Revenue, s.Penalty)
	}
	res.Tables = append(res.Tables, t)

	t2 := report.NewTable("operator comparison over year 2",
		"margin", "revenue €", "penalties €", "net €", "shortfall core-h")
	t2.Row("0.7 (prudent)", prudent.Revenue(), prudent.Penalties(), prudent.Net(), prudent.ShortfallHours())
	t2.Row("1.1 (aggressive)", aggressive.Revenue(), aggressive.Penalties(), aggressive.Net(), aggressive.ShortfallHours())
	res.Tables = append(res.Tables, t2)

	res.Findings["prudent_penalties"] = prudent.Penalties()
	res.Findings["aggressive_penalties"] = aggressive.Penalties()
	res.Findings["prudent_net"] = prudent.Net()
	res.Findings["aggressive_net"] = aggressive.Net()
	res.Findings["model_slope"] = model.Slope
	res.Notes = append(res.Notes, fmt.Sprintf(
		"weather-fitted capacity model (slope %.4f/K) lets a prudent operator collect €%.0f with €%.0f penalties; the aggressive operator pays €%.0f in penalties on %.0f undelivered core-hours",
		model.Slope, prudent.Revenue(), prudent.Penalties(),
		aggressive.Penalties(), aggressive.ShortfallHours()))
	return res
}
