package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
)

// E3ThreeFlows runs the Fig. 3 scenario: heating, DCC and edge requests
// co-served by the same fleet for a winter week, verifying that no flow
// starves — the core DF3 proposition.
func E3ThreeFlows(o Options) *Result {
	res := newResult("E3 three flows on one fleet (Fig.3)")
	cfg := city.DefaultConfig()
	cfg.Seed = o.Seed
	horizon := 7 * sim.Day
	if o.Quick {
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 4
		horizon = 2 * sim.Day
	}
	c := city.Build(cfg)
	c.StartEdgeTraffic(horizon, 1)
	c.StartDCCTraffic(horizon, 1.5)
	c.Run(horizon + 12*sim.Hour) // drain tail

	// Heating flow: comfort.
	inBand := 0.0
	for _, r := range c.Rooms() {
		inBand += r.Comfort.InBandFraction()
	}
	inBand /= float64(len(c.Rooms()))

	edge := &c.MW.Edge
	dcc := &c.MW.DCC

	t := report.NewTable("per-flow outcomes over one winter week",
		"flow", "volume", "headline metric", "value")
	t.Row("heating", len(c.Rooms()), "occupied in-band fraction", inBand)
	t.Row("edge", edge.Arrived(), "p99 latency (ms)", edge.Latency.P99()*1000)
	t.Row("edge", edge.Arrived(), "miss rate", edge.MissRate())
	t.Row("dcc", dcc.JobsDone.Value(), "mean job stretch", dcc.JobStretch.Mean())
	t.Row("dcc", dcc.TasksDone.Value(), "core-hours done", dcc.WorkDone/3600)
	res.Tables = append(res.Tables, t)

	res.Findings["in_band"] = inBand
	res.Findings["edge_p99_ms"] = edge.Latency.P99() * 1000
	res.Findings["edge_miss_rate"] = edge.MissRate()
	res.Findings["dcc_jobs"] = float64(dcc.JobsDone.Value())
	res.Findings["dcc_stretch"] = dcc.JobStretch.Mean()
	res.Notes = append(res.Notes, fmt.Sprintf(
		"all three flows progress: comfort %.2f in-band, edge p99 %.0f ms (miss %.3f), %d DCC jobs at stretch %.2f",
		inBand, edge.Latency.P99()*1000, edge.MissRate(), dcc.JobsDone.Value(), dcc.JobStretch.Mean()))
	return res
}
