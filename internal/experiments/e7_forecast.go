package experiments

import (
	"fmt"

	"df3/internal/forecast"
	"df3/internal/regulator"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/units"
	"df3/internal/weather"
)

// E7Forecast evaluates the §III-C predictive platform: fit the
// thermosensitivity model and a Holt-Winters smoother on the first part of
// a year of hourly heat demand, score them on the held-out tail, and
// compare against a repeat-last-day naive.
//
// The demand series is generated from the same physical models the
// simulator uses (steady-state zone demand under the schedule mix and the
// synthetic weather), hourly over one year.
func E7Forecast(o Options) *Result {
	res := newResult("E7 heat-demand forecasting")
	rooms := 60
	hours := 365 * 24
	if o.Quick {
		rooms = 20 // the horizon stays a full year: scoring needs winter
	}
	cal := sim.JanuaryStart
	gen := weather.New(weather.Paris, cal, o.Seed)

	// Build the room population: a mix of homes and offices.
	zones := make([]*thermal.Zone, rooms)
	scheds := make([]regulator.Schedule, rooms)
	for i := range zones {
		if i%3 == 2 {
			zones[i] = thermal.NewZone(thermal.Office)
			scheds[i] = regulator.SeasonalOff{
				Inner:      regulator.OfficeSchedule{Calendar: cal, Comfort: 20, Setback: 16},
				Calendar:   cal,
				FirstMonth: 10, LastMonth: 4,
			}
		} else {
			zones[i] = thermal.NewZone(thermal.Apartment)
			scheds[i] = regulator.SeasonalOff{
				Inner:      regulator.HomeSchedule{Calendar: cal, Comfort: 21, Setback: 17},
				Calendar:   cal,
				FirstMonth: 10, LastMonth: 4,
			}
		}
	}

	temps := make([]float64, hours)
	demand := make([]float64, hours)
	for h := 0; h < hours; h++ {
		t := sim.Time(h) * sim.Hour
		out := gen.OutdoorTemp(t)
		temps[h] = float64(out)
		total := 0.0
		for i, z := range zones {
			sp, _ := scheds[i].At(t)
			if sp <= 0 {
				continue
			}
			total += float64(z.SteadyStatePower(sp, out, units.Watt(100)))
		}
		demand[h] = total
	}

	split := hours / 2
	// The operator knows the heating-season calendar (it configures it);
	// weather models predict the in-season demand and emit zero outside.
	season := regulator.SeasonalOff{Calendar: cal, FirstMonth: 10, LastMonth: 4}
	inSeason := func(h int) bool { return season.InSeason(sim.Time(h) * sim.Hour) }

	// Thermosensitivity regression on the training window's in-season
	// hours.
	var trTemps, trDemand []float64
	for h := 0; h < split; h++ {
		if inSeason(h) {
			trTemps = append(trTemps, temps[h])
			trDemand = append(trDemand, demand[h])
		}
	}
	ts, err := forecast.FitThermosensitivity(trTemps, trDemand)
	if err != nil {
		panic("experiments: thermosensitivity fit failed: " + err.Error())
	}
	var tsAcc forecast.Accuracy
	for h := split; h < hours; h++ {
		p := 0.0
		if inSeason(h) {
			p = ts.Predict(temps[h])
		}
		tsAcc.Observe(p, demand[h])
	}

	// Holt-Winters with a weekly season (captures both the diurnal and the
	// weekday/weekend structure), one-step-ahead.
	hw := forecast.NewHoltWinters(0.35, 0.01, 0.25, 168)
	var hwAcc forecast.Accuracy
	for h := 0; h < hours; h++ {
		if h >= split {
			hwAcc.Observe(hw.Forecast(1), demand[h])
		}
		hw.Observe(demand[h])
	}

	// Naive: repeat the value 24 h ago.
	var naiveAcc forecast.Accuracy
	for h := split; h < hours; h++ {
		naiveAcc.Observe(demand[h-24], demand[h])
	}

	t := report.NewTable("held-out forecast accuracy (hourly heat demand)",
		"model", "WAPE", "RMSE W", "params")
	t.Row("thermosensitivity", tsAcc.WAPE(), tsAcc.RMSE(),
		fmt.Sprintf("slope %.0f W/K, threshold %.1f °C", ts.Slope, ts.Threshold))
	t.Row("holt-winters(168h)", hwAcc.WAPE(), hwAcc.RMSE(), "α=0.35 β=0.01 γ=0.25")
	t.Row("naive(t-24h)", naiveAcc.WAPE(), naiveAcc.RMSE(), "")
	res.Tables = append(res.Tables, t)

	res.Findings["ts_wape"] = tsAcc.WAPE()
	res.Findings["hw_wape"] = hwAcc.WAPE()
	res.Findings["naive_wape"] = naiveAcc.WAPE()
	res.Findings["ts_slope"] = ts.Slope
	res.Notes = append(res.Notes, fmt.Sprintf(
		"thermosensitivity WAPE %.3f (slope %.0f W/K), Holt-Winters %.3f, naive %.3f — weather-driven model confirms §III-C's correlation claim",
		tsAcc.WAPE(), ts.Slope, hwAcc.WAPE(), naiveAcc.WAPE()))
	return res
}
