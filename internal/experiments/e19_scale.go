package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/network"
	"df3/internal/report"
	"df3/internal/sim"
)

// E19ShardScale is the scale sweep for the sharded kernel: a federation of
// complete cities (the nation-scale workload class of the conclusion —
// "whole cities as one distributed computer") is run at growing city counts
// and shard counts, with inter-city batch offload crossing the backbone.
//
// Two claims are under test. Determinism: at every scale the N-shard
// federation checksum (ledgers, latencies, event counts, clocks, per city)
// must equal the 1-shard checksum — conservative windows with
// backbone-lookahead never reorder observable work. Scalability: the
// critical-path speedup — total events over the sum of per-window maximum
// shard event counts, the barrier-synchronous bound a ≥N-core machine
// realizes in wall-clock — must grow toward the shard count. Cities are
// homogeneous templates, so the contiguous partition balances well and
// 4 shards should come in near 4×.
func E19ShardScale(o Options) *Result {
	res := newResult("E19 shard scale: federation speedup and determinism")

	// The sweep: city counts scale the seed city 10× and 100× (full mode);
	// each scale runs at 1, 2 and 4 shards against the serial reference.
	horizon := 6 * sim.Hour
	scales := []int{10, 100}
	shardCounts := []int{1, 2, 4}
	cfg := city.DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 4
	cfg.DatacenterNodes = 2
	if o.Quick {
		horizon = 2 * sim.Hour
		scales = []int{2, 4}
		shardCounts = []int{1, 2}
	}

	// Inter-city offload is staged batch work: jobs accumulate at the
	// boundary for a couple of minutes before dispatch. The staging floor is
	// the kernel's lookahead, so it also sets the window length — long
	// enough to average out per-city workload bursts inside each window.
	backbone := network.DefaultBackbone()
	backbone.Staging = 120

	run := func(cities, shards int) (*city.Federation, uint64) {
		f := city.BuildFederation(city.FederationConfig{
			Seed: o.Seed, Cities: cities, Shards: shards, City: cfg,
			Backbone: backbone,
		})
		f.StartEdgeTraffic(horizon, 0.5)
		f.StartInterCityDCC(horizon, 2)
		f.Run(horizon + sim.Hour)
		return f, f.Checksum()
	}

	t := report.NewTable("federation scale sweep (shard kernel vs serial)",
		"cities", "shards", "events", "msgs", "x-shard", "windows",
		"speedup", "efficiency", "identical")
	allIdentical := true
	for _, cities := range scales {
		var ref uint64
		for _, shards := range shardCounts {
			f, sum := run(cities, shards)
			st := f.Kernel.Stats()
			identical := "ref"
			if shards == shardCounts[0] {
				ref = sum
			} else if sum == ref {
				identical = "yes"
			} else {
				identical = "NO"
				allIdentical = false
			}
			speedup := st.Speedup()
			t.Row(cities, shards, int64(st.TotalEvents), st.Sent, st.CrossShard,
				st.Windows, speedup, speedup/float64(shards), identical)
			key := fmt.Sprintf("speedup_%dx_%ds", cities, shards)
			res.Findings[key] = speedup
		}
	}
	res.Tables = append(res.Tables, t)

	res.Findings["identical_all"] = 0
	if allIdentical {
		res.Findings["identical_all"] = 1
	}
	top := fmt.Sprintf("speedup_%dx_%ds", scales[len(scales)-1], shardCounts[len(shardCounts)-1])
	res.Notes = append(res.Notes, fmt.Sprintf(
		"critical-path speedup at the largest point (%d cities, %d shards): %.2f×; all shard counts byte-identical to serial: %v",
		scales[len(scales)-1], shardCounts[len(shardCounts)-1], res.Findings[top], allIdentical))
	res.Notes = append(res.Notes,
		"speedup is the deterministic barrier-synchronous bound (events / critical-path events); wall-clock matches it on a machine with ≥shards cores")
	return res
}
