package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/offload"
	"df3/internal/report"
	"df3/internal/sim"
)

// E5PeakPolicies stresses a saturated cluster with bursty edge arrivals
// under each §III-B peak-management policy. Expected shape: reject sheds
// everything it cannot place; delay converts rejections into deadline
// misses; preemption serves the edge at the cost of DCC stretch;
// horizontal spreads to neighbours at metro cost; smart combines them.
func E5PeakPolicies(o Options) *Result {
	res := newResult("E5 peak-management policies under burst load")
	horizon := sim.Day
	buildings, rooms := 3, 4
	rate := 4.0
	if o.Quick {
		horizon = 8 * sim.Hour
		rate = 3
	}
	policies := []offload.Policy{
		offload.RejectPolicy{},
		offload.DelayPolicy{},
		offload.PreemptPolicy{},
		offload.VerticalPolicy{},
		offload.HorizontalPolicy{},
		offload.Smart{},
	}

	type arm struct {
		miss, p99, stretch, coreH      float64
		preempts, horizontal, vertical int64
	}
	arms := make([]arm, len(policies))
	fanout(len(policies), func(i int) {
		p := policies[i]
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = buildings
		cfg.RoomsPerBuilding = rooms
		cfg.Middleware.Offload = p
		c := city.Build(cfg)
		// Saturate every cluster with long batch work so edge arrivals
		// always find the cluster full.
		stop := c.SaturateDCC(3600, buildings*rooms*20)
		c.StartEdgeTraffic(horizon, rate)
		c.Run(horizon + 2*sim.Hour)
		stop()
		e := &c.MW.Edge
		arms[i] = arm{
			miss: e.MissRate(), p99: e.Latency.P99() * 1000,
			stretch: c.MW.DCC.JobStretch.Mean(), coreH: c.MW.DCC.WorkDone / 3600,
			preempts: e.Preemptions.Value(), horizontal: e.Horizontal.Value(),
			vertical: e.Vertical.Value(),
		}
	})

	t := report.NewTable("policy outcomes on a saturated cluster",
		"policy", "miss rate", "p99 ms", "preempts", "horiz", "vert", "dcc stretch", "dcc core-h")
	for i, p := range policies {
		a := arms[i]
		t.Row(p.Name(), a.miss, a.p99, a.preempts, a.horizontal, a.vertical, a.stretch, a.coreH)
		res.Findings["miss_"+p.Name()] = a.miss
		res.Findings["p99_"+p.Name()] = a.p99
		res.Findings["stretch_"+p.Name()] = a.stretch
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"miss rates — reject %.3f, delay %.3f, preempt %.3f, vertical %.3f, horizontal %.3f, smart %.3f",
		res.Findings["miss_reject"], res.Findings["miss_delay"], res.Findings["miss_preempt"],
		res.Findings["miss_vertical"], res.Findings["miss_horizontal"], res.Findings["miss_smart"]))
	return res
}
