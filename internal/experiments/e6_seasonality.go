package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/thermal"
)

// E6Seasonality runs a full year and reports monthly available compute
// capacity for a heater fleet and for a boiler fleet — the §III-C
// observation that "the computing power of DF servers depends on the heat
// demand", with boilers flattening the curve thanks to their buffer (hot
// water is drawn year-round in our model at a reduced summer level via the
// heating-season schedule for radiators, while the buffer lets the machine
// run whenever the loop has headroom).
func E6Seasonality(o Options) *Result {
	res := newResult("E6 seasonal available capacity: heaters vs boilers")
	horizon := sim.Year
	cfgBase := func() city.Config {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Calendar = sim.JanuaryStart
		cfg.Buildings = 3
		cfg.RoomsPerBuilding = 6
		cfg.ControlPeriod = 300
		cfg.HeatingSeasonFirst = 10
		cfg.HeatingSeasonLast = 4
		// Demand-matched deployment: DF operators install where winter
		// heat demand approaches the server's output (here renovated
		// pre-war rooms at ~440 W design loss for a 500 W Q.rad), which
		// is what makes the winter/summer capacity swing pronounced.
		cfg.RoomSpec = thermal.OldBuilding
		return cfg
	}
	if o.Quick {
		horizon = 240 * sim.Day // January–August: includes real summer
	}

	run := func(boilers int) (months []int, frac []float64) {
		cfg := cfgBase()
		cfg.BoilerBuildings = boilers
		if o.Quick {
			cfg.Buildings = 2
			cfg.RoomsPerBuilding = 4
			if boilers > 0 {
				cfg.BoilerBuildings = 2
			}
		}
		c := city.Build(cfg)
		stop := c.SaturateDCC(1800, 128)
		defer stop()
		c.Run(horizon)
		max := c.Fleet.MaxCapacity()
		ms, means := c.CapacitySeries.Bucket(func(t float64) int {
			return cfg.Calendar.MonthOfYear(t)
		})
		fr := make([]float64, len(means))
		for i := range means {
			fr[i] = means[i] / max
		}
		return ms, fr
	}

	hm, hf := run(0)
	bm, bf := run(3)

	t := report.NewTable("available capacity (fraction of fleet max) by month",
		"month", "heaters", "boilers")
	bIdx := map[int]float64{}
	for i, m := range bm {
		bIdx[m] = bf[i]
	}
	var winterH, summerH, winterB, summerB []float64
	for i, m := range hm {
		t.Row(m, hf[i], bIdx[m])
		switch {
		case m == 12 || m <= 2:
			winterH = append(winterH, hf[i])
			winterB = append(winterB, bIdx[m])
		case m >= 6 && m <= 8:
			summerH = append(summerH, hf[i])
			summerB = append(summerB, bIdx[m])
		}
	}
	res.Tables = append(res.Tables, t)

	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	res.Findings["heater_winter"] = mean(winterH)
	res.Findings["heater_summer"] = mean(summerH)
	res.Findings["boiler_winter"] = mean(winterB)
	res.Findings["boiler_summer"] = mean(summerB)
	if mean(summerH) > 0 {
		res.Findings["heater_ratio"] = mean(winterH) / mean(summerH)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"heater fleet: winter %.2f vs summer %.2f of max capacity; boiler fleet: %.2f vs %.2f",
		mean(winterH), mean(summerH), mean(winterB), mean(summerB)))
	return res
}
