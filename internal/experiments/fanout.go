package experiments

import (
	"runtime"
	"sync"
)

// fanout runs n independent jobs concurrently, bounded by the machine's
// parallelism. Experiment arms are separate simulator instances with their
// own seeds, so cross-run parallelism is free determinism-wise: each job
// writes only to its own result slot and the table is assembled afterwards
// in arm order.
func fanout(n int, job func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
