// Package experiments regenerates every figure and quantified claim of the
// paper (the per-experiment index lives in DESIGN.md). Each experiment is
// a pure function from Options to a Result, so the df3bench CLI, the
// testing.B benchmarks and the integration tests all run the same code.
package experiments

import (
	"fmt"
	"io"

	"df3/internal/report"
	"df3/internal/trace"
)

// Options tune experiment cost.
type Options struct {
	// Seed drives every stochastic component.
	Seed uint64
	// Quick shrinks city sizes and horizons for CI-speed runs. The shapes
	// under comparison are preserved; absolute values move.
	Quick bool
	// Tracer, when non-nil, turns on causal span tracing in experiments
	// that support it (currently E18): each traced scenario becomes one
	// process in the recorder, exportable as Chrome trace-event JSON.
	// Tracing is pure observation — results are identical with it on.
	Tracer *trace.Recorder
	// Shards > 1 executes multi-arm experiments on the sharded kernel:
	// independent scenario arms become logical processes spread over this
	// many worker goroutines. Results are byte-identical to the serial
	// kernel (the arms are independent engines); only wall-clock moves.
	// E19 additionally uses it as the upper bound of its scale sweep.
	Shards int
}

// DefaultOptions is the full-fidelity configuration.
func DefaultOptions() Options { return Options{Seed: 1} }

// Result is an experiment's output: printable tables plus the scalar
// findings the tests assert on.
type Result struct {
	Name   string
	Tables []*report.Table
	// Findings holds the headline scalars by key.
	Findings map[string]float64
	// Notes are free-form observations for EXPERIMENTS.md.
	Notes []string
}

func newResult(name string) *Result {
	return &Result{Name: name, Findings: map[string]float64{}}
}

// Write renders the result to w.
func (r *Result) Write(w io.Writer) error {
	fmt.Fprintf(w, "\n###### %s ######\n", r.Name)
	for _, t := range r.Tables {
		if err := t.Write(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// Experiment names a runnable experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) *Result
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig.4: monthly mean indoor temperature Nov–May", E1Fig4Comfort},
		{"E2", "PUE: DF fleet vs classical datacenter (§II-A)", E2PUE},
		{"E3", "Three flows co-served on one fleet (Fig.3)", E3ThreeFlows},
		{"E4", "Architecture class 1 vs class 2 under load (§III-B, Fig.5)", E4ArchClasses},
		{"E5", "Peak-management policies (§III-B)", E5PeakPolicies},
		{"E6", "Seasonal capacity: heaters vs boilers (§III-C)", E6Seasonality},
		{"E7", "Heat-demand forecasting (§III-C)", E7Forecast},
		{"E8", "Edge latency: direct vs indirect vs cloud (§II-C)", E8EdgeLatency},
		{"E9", "Render-campaign replay, scaled (§III)", E9RenderCampaign},
		{"E10", "Waste heat: heaters vs boilers, summer vs winter (§III-A/C)", E10WasteHeat},
		{"E11", "Seasonal spot pricing (§IV)", E11Pricing},
		{"E12", "DF3 vs opportunistic desktop grid (§I/§V)", E12DesktopGrid},
		{"E13", "Forecast-driven SLA capacity planning (§III-C→§IV)", E13CapacityPlanning},
		{"E14", "Operator economics: DF vs datacenter (§II-A, [6])", E14Economics},
		{"E15", "Smart-grid demand response (§III-A)", E15DemandResponse},
		{"E16", "Map serving from gateway content caches (§II-A/§V)", E16ContentDelivery},
		{"E17", "Market sizing: French electric heating vs hyperscale (conclusion)", E17MarketSizing},
		{"E18", "Chaos: graceful degradation under network faults (§III-B)", E18Chaos},
		{"E19", "Shard scale: federation speedup and determinism (§V)", E19ShardScale},
		{"A1", "Ablation: hysteresis vs proportional regulator", AblationRegulator},
		{"A2", "Ablation: cluster formation (building/grid/k-means)", AblationClustering},
		{"A3", "Ablation: EDF vs FCFS edge queueing", AblationEDF},
		{"A4", "Ablation: boiler thermal buffer size", AblationBoilerBuffer},
		{"A5", "Ablation: deployment climate (Stockholm/Paris/Seville)", AblationClimate},
	}
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}
