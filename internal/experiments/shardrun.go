package experiments

import (
	"fmt"

	"df3/internal/shard"
	"df3/internal/sim"
)

// runArms executes the n independent scenario arms of a multi-arm
// experiment. build(i) wires arm i — engine, scenario, traffic — and
// returns its engine and horizon; collect(i) reads its results into the
// experiment's tables.
//
// With o.Shards <= 1 the arms run strictly sequentially (build, run,
// collect, in order): the serial kernel path, byte-identical to what the
// experiments always did. With o.Shards > 1 every arm is built first (still
// in order), the engines run as logical processes on a sharded kernel with
// Infinite lookahead — arms never exchange messages — and results are
// collected in arm order afterwards. Arms are self-contained engines with
// independent RNG substreams, so the two paths produce identical output;
// only wall-clock changes.
func runArms(o Options, n int, build func(i int) (*sim.Engine, sim.Time), collect func(i int)) {
	if o.Shards <= 1 {
		for i := 0; i < n; i++ {
			e, until := build(i)
			e.Run(until)
			collect(i)
		}
		return
	}
	shards := o.Shards
	if shards > n {
		shards = n
	}
	k := shard.NewKernel(shards, shard.Infinite)
	var max sim.Time
	for i := 0; i < n; i++ {
		e, until := build(i)
		k.AddLP(fmt.Sprintf("arm-%d", i), e, until)
		if until > max {
			max = until
		}
	}
	k.Run(max)
	for i := 0; i < n; i++ {
		collect(i)
	}
}
