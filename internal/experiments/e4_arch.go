package experiments

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/core"
	"df3/internal/offload"
	"df3/internal/report"
	"df3/internal/sim"
)

// E4ArchClasses compares the two §III-B architectures across DCC load:
// class 1 (every worker shared) vs class 2 (a dedicated edge worker per
// cluster). Expected shape: at low load the shared class wins DCC
// throughput with equal edge latency; as DCC load saturates the cluster,
// the dedicated class holds edge p99 flat while shared-class edge latency
// degrades (or leans on preemption).
func E4ArchClasses(o Options) *Result {
	res := newResult("E4 architecture class 1 (shared) vs class 2 (dedicated)")
	loads := []float64{0.5, 3, 8, 16}
	horizon := 2 * sim.Day
	buildings, rooms := 3, 6
	if o.Quick {
		loads = []float64{1, 6}
		horizon = sim.Day
		buildings, rooms = 2, 4
	}

	run := func(arch core.ArchClass, jobsPerHour float64) (p99ms, miss, coreHours float64) {
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = buildings
		cfg.RoomsPerBuilding = rooms
		cfg.Middleware.Arch = arch
		cfg.Middleware.DedicatedEdgeWorkers = 1
		// Delay-only offloading isolates the architectural question: with
		// preemption enabled, class 1 can always carve out slots and the
		// two classes converge (E5 covers the policies).
		cfg.Middleware.Offload = offload.DelayPolicy{}
		c := city.Build(cfg)
		c.StartEdgeTraffic(horizon, 1)
		c.StartDCCTraffic(horizon, jobsPerHour)
		c.Run(horizon + 6*sim.Hour)
		return c.MW.Edge.Latency.P99() * 1000, c.MW.Edge.MissRate(), c.MW.DCC.WorkDone / 3600
	}

	archs := []core.ArchClass{core.Shared, core.Dedicated}
	type arm struct{ p99, miss, ch float64 }
	arms := make([]arm, len(loads)*len(archs))
	fanout(len(arms), func(i int) {
		load := loads[i/len(archs)]
		arch := archs[i%len(archs)]
		p99, miss, ch := run(arch, load)
		arms[i] = arm{p99, miss, ch}
	})

	t := report.NewTable("edge p99 and DCC throughput vs DCC load",
		"dcc jobs/h", "arch", "edge p99 ms", "edge miss rate", "dcc core-hours")
	for i, a := range arms {
		load := loads[i/len(archs)]
		arch := archs[i%len(archs)]
		t.Row(load, arch.String(), a.p99, a.miss, a.ch)
		key := fmt.Sprintf("%s_%g", arch, load)
		res.Findings["p99_"+key] = a.p99
		res.Findings["miss_"+key] = a.miss
		res.Findings["ch_"+key] = a.ch
	}
	res.Tables = append(res.Tables, t)

	hi := loads[len(loads)-1]
	lo := loads[0]
	res.Notes = append(res.Notes, fmt.Sprintf(
		"at load %g jobs/h: shared dcc %.0f core-h vs dedicated %.0f; at load %g: shared edge p99 %.1f ms vs dedicated %.1f ms",
		lo, res.Findings[fmt.Sprintf("ch_shared_%g", lo)], res.Findings[fmt.Sprintf("ch_dedicated_%g", lo)],
		hi, res.Findings[fmt.Sprintf("p99_shared_%g", hi)], res.Findings[fmt.Sprintf("p99_dedicated_%g", hi)]))
	return res
}
