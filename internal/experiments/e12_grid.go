package experiments

import (
	"fmt"

	"df3/internal/baseline"
	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/workload"
)

// E12DesktopGrid runs the same deadline-bound edge workload on the DF3
// platform and on a BOINC-style opportunistic desktop grid — the §I
// argument: "the experimental validation of desktop grid architectures has
// often been done on opportunistic workloads ... such workloads do not
// capture the foundations of real-time applications", plus the discomfort
// the grid inflicts on hosts (owner interruptions).
func E12DesktopGrid(o Options) *Result {
	res := newResult("E12 DF3 vs opportunistic desktop grid")
	horizon := 2 * sim.Day
	if o.Quick {
		horizon = 12 * sim.Hour
	}

	// Shared workload trace: one MMPP stream, replayed onto both
	// platforms so they face identical arrivals.
	type arrival struct {
		at  sim.Time
		req workload.EdgeRequest
	}
	var tracefile []arrival
	{
		e := sim.New()
		gen := workload.DefaultEdgeGen(rng.New(o.Seed), 8)
		gen.Start(e, horizon, func(r workload.EdgeRequest) {
			tracefile = append(tracefile, arrival{e.Now(), r})
		})
		e.Run(horizon)
	}

	// DF3 city.
	var dfMiss, dfP99 float64
	var dfServed int64
	{
		cfg := city.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 5
		c := city.Build(cfg)
		b := c.Buildings[0]
		for _, a := range tracefile {
			a := a
			c.Engine.At(a.at, func() {
				c.MW.SubmitEdge(b.Cluster, b.Rooms[a.req.Device%len(b.Rooms)].Node, a.req)
			})
		}
		c.Run(horizon + sim.Hour)
		dfMiss = c.MW.Edge.MissRate()
		dfP99 = c.MW.Edge.Latency.P99() * 1000
		dfServed = c.MW.Edge.Served.Value()
	}

	// Desktop grid with the same aggregate core count (10 PCs × 4 cores ≈
	// 2.5 Q.rads; give it MORE capacity than DF3's edge share to be fair).
	var gridMiss, gridP99 float64
	var gridServed int64
	var interruptions int
	var backlog int
	{
		e := sim.New()
		g := baseline.NewDesktopGrid(e, 20, o.Seed)
		for _, a := range tracefile {
			a := a
			e.At(a.at, func() { g.Submit(a.req) })
		}
		e.Run(horizon + sim.Hour)
		served := g.Served.Value()
		// Requests still queued when the run ends count as missed.
		backlog = g.QueueLen()
		gridMiss = float64(g.Missed.Value()+int64(backlog)) / float64(served+int64(backlog))
		gridP99 = g.Latency.P99() * 1000
		gridServed = served
		interruptions = g.Interruptions()
	}

	t := report.NewTable("identical deadline workload on both platforms",
		"platform", "served", "miss rate", "p99 ms", "host discomfort")
	t.Row("DF3 heaters", dfServed, dfMiss, dfP99, "none (heat is the service)")
	t.Row("desktop grid", gridServed, gridMiss, gridP99,
		fmt.Sprintf("%d owner interruptions, %d stranded requests", interruptions, backlog))
	res.Tables = append(res.Tables, t)

	res.Findings["df_miss"] = dfMiss
	res.Findings["grid_miss"] = gridMiss
	res.Findings["interruptions"] = float64(interruptions)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"miss rate: DF3 %.3f vs desktop grid %.3f; the grid interrupted its hosts %d times",
		dfMiss, gridMiss, interruptions))
	return res
}
