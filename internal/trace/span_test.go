package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildSampleTrace records a small deterministic request tree:
//
//	request[1..10]: decide → net:up → {queue → compute} with one retry hop
//	on request 3 (timeout instant + second net:up + compute).
func buildSampleTrace(r *Recorder) {
	r.BeginProcess("E-sample")
	root := r.BeginSpan(0.000, "request", 3, 0)
	r.Instant(0.000, "decide", 0, root, "local")
	up := r.BeginSpan(0.000, "net:device-gw", 0, root)
	r.EndSpanDetail(0.004, up, "delivered")
	q := r.BeginSpan(0.004, "queue", 0, root)
	r.EndSpan(0.010, q)
	c := r.BeginSpan(0.010, "compute", 0, root)
	r.EndSpan(0.030, c)
	r.Instant(0.050, "timeout", 0, root, "retry 1")
	up2 := r.BeginSpan(0.050, "net:device-gw", 0, root)
	r.EndSpanDetail(0.054, up2, "delivered")
	c2 := r.BeginSpan(0.054, "compute", 0, root)
	r.EndSpan(0.070, c2)
	r.EndSpanDetail(0.074, root, "served")
}

func TestSpanLifecycleInvariants(t *testing.T) {
	r := &Recorder{}
	buildSampleTrace(r)

	// Every Begin has exactly one End: nothing left open, no unmatched
	// ends, no orphan parents.
	if n := len(r.OpenSpans()); n != 0 {
		t.Errorf("%d spans left open: %v", n, r.OpenSpans())
	}
	if r.UnmatchedEnds() != 0 {
		t.Errorf("unmatched ends = %d", r.UnmatchedEnds())
	}
	if r.OrphanBegins() != 0 {
		t.Errorf("orphan begins = %d", r.OrphanBegins())
	}
	spans := r.Spans()
	if len(spans) != 8 {
		t.Fatalf("got %d spans, want 8", len(spans))
	}
	seen := map[SpanID]bool{}
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Errorf("span id %d completed twice", sp.ID)
		}
		seen[sp.ID] = true
		if sp.End < sp.Begin {
			t.Errorf("span %d (%s) ends before it begins: %v < %v", sp.ID, sp.Stage, sp.End, sp.Begin)
		}
		// Children inherit the root's trace id.
		if sp.Trace != 3 {
			t.Errorf("span %d (%s) trace = %d, want inherited 3", sp.ID, sp.Stage, sp.Trace)
		}
		if sp.Parent != 0 && !seen[sp.Parent] {
			// Parent must have been issued before the child (ids ascend);
			// the root completes last so only check issuance order.
			if sp.Parent >= sp.ID {
				t.Errorf("span %d has later parent %d", sp.ID, sp.Parent)
			}
		}
	}

	// Double-End is flagged, not double-recorded.
	r2 := &Recorder{}
	id := r2.BeginSpan(0, "x", 1, 0)
	r2.EndSpan(1, id)
	r2.EndSpan(2, id)
	if r2.UnmatchedEnds() != 1 {
		t.Errorf("double End: unmatched = %d, want 1", r2.UnmatchedEnds())
	}
	if len(r2.Spans()) != 1 {
		t.Errorf("double End recorded %d spans", len(r2.Spans()))
	}

	// A Begin against a bogus parent is flagged as an orphan.
	r2.BeginSpan(3, "y", 1, 9999)
	if r2.OrphanBegins() != 1 {
		t.Errorf("orphan begins = %d, want 1", r2.OrphanBegins())
	}
}

func TestSpanNilRecorderSafe(t *testing.T) {
	var r *Recorder
	id := r.BeginSpan(0, "x", 1, 0)
	if id != 0 {
		t.Errorf("nil recorder issued span id %d", id)
	}
	r.EndSpan(1, id)
	r.EndSpanDetail(1, id, "d")
	r.Instant(1, "y", 1, 0, "")
	if r.BeginProcess("p") != 0 {
		t.Error("nil recorder issued a process id")
	}
	if r.Spans() != nil || r.OpenSpans() != nil || r.Processes() != nil {
		t.Error("nil recorder returned non-nil slices")
	}
	if r.UnmatchedEnds() != 0 || r.OrphanBegins() != 0 {
		t.Error("nil recorder counted something")
	}
}

// TestSpanHotPathNoAlloc proves the tracing-off fast path costs zero
// allocations: a nil *Recorder receiver short-circuits before any work.
func TestSpanHotPathNoAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		id := r.BeginSpan(1, "request", 42, 0)
		r.Instant(1, "decide", 0, id, "local")
		r.EndSpanDetail(2, id, "served")
	})
	if allocs != 0 {
		t.Errorf("tracing-off span path allocates %v per op, want 0", allocs)
	}
}

func TestRecorderRingCapacity(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Add(float64(i), "tick", uint64(i), 0)
		id := r.BeginSpan(float64(i), "s", uint64(i+1), 0)
		r.EndSpan(float64(i)+0.5, id)
	}
	if r.Len() != 4 {
		t.Errorf("event len = %d, want 4", r.Len())
	}
	if r.DroppedEvents() != 6 {
		t.Errorf("dropped events = %d, want 6", r.DroppedEvents())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.ID != uint64(6+i) {
			t.Errorf("event[%d].ID = %d, want %d (oldest evicted first)", i, e.ID, 6+i)
		}
	}
	spans := r.Spans()
	if len(spans) != 4 || r.DroppedSpans() != 6 {
		t.Errorf("spans = %d dropped = %d, want 4/6", len(spans), r.DroppedSpans())
	}
	for i, sp := range spans {
		if sp.Trace != uint64(7+i) {
			t.Errorf("span[%d].Trace = %d, want %d", i, sp.Trace, 7+i)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("SetCapacity after recording should panic")
		}
	}()
	r.SetCapacity(8)
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	r := &Recorder{}
	buildSampleTrace(r)
	var buf bytes.Buffer
	if err := r.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Spans()
	if len(got) != len(want) {
		t.Fatalf("round-trip %d spans, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("span %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestChromeExporterGolden pins the Chrome trace-event output byte-for-byte
// against testdata/chrome_golden.json (refresh with `go test -run Golden
// -update ./internal/trace`). It also checks the export is valid JSON with
// the structure Perfetto expects.
func TestChromeExporterGolden(t *testing.T) {
	r := &Recorder{}
	buildSampleTrace(r)
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 1 metadata + 8 spans.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("%d trace events, want 9", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Errorf("first event is not process metadata: %+v", doc.TraceEvents[0])
	}
	var sawRetryCompute bool
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "X" {
			t.Errorf("span event phase = %q, want X", ev.Ph)
		}
		if ev.Tid != 3 {
			t.Errorf("span tid = %d, want trace id 3", ev.Tid)
		}
		if ev.Name == "compute" && ev.Ts == 0.054*1e6 {
			sawRetryCompute = true
		}
	}
	if !sawRetryCompute {
		t.Error("retry-hop compute span missing from export")
	}

	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export deviates from golden file:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestSummarizeStages(t *testing.T) {
	r := &Recorder{}
	buildSampleTrace(r)
	sums := SummarizeStages(r.Spans())
	if len(sums) == 0 || sums[0].Stage != "request" {
		t.Fatalf("costliest stage = %+v, want request first", sums)
	}
	byStage := map[string]StageSummary{}
	for _, s := range sums {
		byStage[s.Stage] = s
	}
	if c := byStage["compute"]; c.Count != 2 || math.Abs(c.Total-0.036) > 1e-12 {
		t.Errorf("compute summary = %+v", c)
	}
	if n := byStage["net:device-gw"]; n.Count != 2 || math.Abs(n.Mean-0.004) > 1e-12 {
		t.Errorf("net summary = %+v", n)
	}
}

func TestSelfTimesDecompose(t *testing.T) {
	r := &Recorder{}
	buildSampleTrace(r)
	selfs := SelfTimes(r.Spans())
	total := 0.0
	byStage := map[string]float64{}
	for _, s := range selfs {
		byStage[s.Stage] = s.Self
		total += s.Self
	}
	// Self times of a tree decompose the root duration exactly.
	if math.Abs(total-0.074) > 1e-12 {
		t.Errorf("self times sum to %v, want root duration 0.074", total)
	}
	if math.Abs(byStage["compute"]-0.036) > 1e-12 {
		t.Errorf("compute self = %v, want 0.036", byStage["compute"])
	}
	// The root's self time is the uninstrumented wait (0.030→0.050 retry
	// wait plus 0.070→0.074 response leg).
	if math.Abs(byStage["request"]-0.024) > 1e-12 {
		t.Errorf("request self = %v, want 0.024", byStage["request"])
	}
}

func TestCriticalPath(t *testing.T) {
	r := &Recorder{}
	buildSampleTrace(r)
	roots := Roots(r.Spans())
	if len(roots) != 1 || roots[0].Stage != "request" {
		t.Fatalf("roots = %+v", roots)
	}
	segs := CriticalPath(r.Spans(), roots[0].ID)
	if len(segs) == 0 {
		t.Fatal("empty critical path")
	}
	// Segments are contiguous, cover the root exactly, and visit the
	// retry-hop stages.
	cur := roots[0].Begin
	var stages []string
	for _, s := range segs {
		if s.From != cur {
			t.Errorf("gap in critical path at %v (segment starts %v)", cur, s.From)
		}
		if s.To < s.From {
			t.Errorf("segment runs backwards: %+v", s)
		}
		cur = s.To
		stages = append(stages, s.Stage)
	}
	if cur != roots[0].End {
		t.Errorf("critical path ends at %v, want %v", cur, roots[0].End)
	}
	joined := strings.Join(stages, ",")
	for _, want := range []string{"net:device-gw", "queue", "compute", "request"} {
		if !strings.Contains(joined, want) {
			t.Errorf("critical path %v missing stage %s", stages, want)
		}
	}
}
