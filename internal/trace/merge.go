package trace

// Merge folds another recorder's spans, events, processes and hygiene
// counters into r, remapping span and process identities so nothing
// collides. Sharded runs record into one private recorder per shard (the
// simulation stays single-threaded within a shard, and recorders are not
// concurrency-safe); at export the per-shard recorders merge into one, in a
// deterministic caller-chosen order, so a federation trace opens in
// Perfetto as one file with one named process per traced scenario.
//
// Completed spans keep their completion order within each source; open
// spans remain open (they surface in OpenSpans as usual). Trace ids are
// caller-owned and pass through untouched — cross-recorder grouping is by
// process, which is remapped. Merging into or from a nil recorder is a
// no-op. The capacity bound of r applies: merged spans and events beyond it
// evict the oldest, advancing the dropped counters exactly as live
// recording would.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	idBase := r.nextSpan
	procBase := len(r.procs)
	r.procs = append(r.procs, src.procs...)

	remap := func(sp Span) Span {
		sp.ID += idBase
		if sp.Parent != 0 {
			sp.Parent += idBase
		}
		if sp.Proc != 0 {
			sp.Proc += procBase
		}
		return sp
	}
	for _, sp := range src.Spans() {
		r.pushSpan(remap(sp))
	}
	if len(src.open) > 0 {
		if r.open == nil {
			r.open = map[SpanID]Span{}
		}
		//df3:unordered-ok remapped IDs are distinct, so each write lands on its own key
		for _, sp := range src.open {
			sp = remap(sp)
			r.open[sp.ID] = sp
		}
	}
	r.nextSpan += src.nextSpan
	r.unmatchedEnds += src.unmatchedEnds
	r.orphanBegins += src.orphanBegins
	r.spDropped += src.spDropped
	r.evDropped += src.evDropped
	for _, ev := range src.Events() {
		r.Record(ev)
	}
}
