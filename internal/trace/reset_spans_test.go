package trace

import (
	"testing"

	"df3/internal/sim"
)

// TestSpansSurviveEventReset models the retry path that motivated
// Engine.Reset: a request's span opens, its completion event is Reset
// (retimed) several times while tick domains run, and the span closes
// exactly once when the event finally fires. The recorder's hygiene
// counters must stay at zero — a Reset must never manufacture a stale
// completion (double EndSpan) or strand an open span.
func TestSpansSurviveEventReset(t *testing.T) {
	e := sim.New()
	r := NewRecorder(0)
	r.BeginProcess("reset-test")

	d := e.Domain(5)
	d.Subscribe(func(sim.Time) {})

	root := r.BeginSpan(0, "request", 1, 0)
	var ev *sim.Event
	ev = e.At(10, func() {
		r.EndSpan(e.Now(), root)
	})
	e.Reset(ev, 22) // first retry pushes completion out
	e.Reset(ev, 17) // a faster path pulls it back in

	child := r.BeginSpan(2, "attempt", 0, root)
	e.At(4, func() { r.EndSpan(e.Now(), child) })

	e.Run(30)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d completed spans, want 2", len(spans))
	}
	byStage := map[string]Span{}
	for _, s := range spans {
		byStage[s.Stage] = s
	}
	if got := byStage["request"]; got.Begin != 0 || got.End != 17 {
		t.Errorf("request span [%v,%v], want [0,17]", got.Begin, got.End)
	}
	if got := byStage["attempt"]; got.End != 4 || got.Parent != root || got.Trace != 1 {
		t.Errorf("attempt span end %v parent %v trace %v, want 4 %v 1",
			got.End, got.Parent, got.Trace, root)
	}
	if n := len(r.OpenSpans()); n != 0 {
		t.Errorf("%d spans left open", n)
	}
	if r.UnmatchedEnds() != 0 || r.OrphanBegins() != 0 {
		t.Errorf("hygiene counters dirty: unmatched ends %d, orphan begins %d",
			r.UnmatchedEnds(), r.OrphanBegins())
	}
}

// TestSpanEndViaCancelledEvent: when a completion event is Cancelled and
// replaced (the other retry idiom), only the replacement closes the span;
// the hygiene counters stay clean because the cancelled closure never ran.
func TestSpanEndViaCancelledEvent(t *testing.T) {
	e := sim.New()
	r := NewRecorder(0)
	r.BeginProcess("cancel-test")

	sp := r.BeginSpan(0, "request", 7, 0)
	old := e.At(10, func() { r.EndSpan(e.Now(), sp) })
	e.Cancel(old)
	e.At(12, func() { r.EndSpanDetail(e.Now(), sp, "retry") })
	e.Run(20)

	spans := r.Spans()
	if len(spans) != 1 || spans[0].End != 12 || spans[0].Detail != "retry" {
		t.Fatalf("spans = %+v, want one ending at 12 with detail retry", spans)
	}
	if r.UnmatchedEnds() != 0 || r.OrphanBegins() != 0 || len(r.OpenSpans()) != 0 {
		t.Errorf("hygiene dirty: %d unmatched, %d orphans, %d open",
			r.UnmatchedEnds(), r.OrphanBegins(), len(r.OpenSpans()))
	}
}

// TestDoubleEndIsCountedOnce: if a bug does fire two completions for one
// span, the second EndSpan is refused and surfaces in UnmatchedEnds — the
// counter the chaos experiments assert on.
func TestDoubleEndIsCountedOnce(t *testing.T) {
	e := sim.New()
	r := NewRecorder(0)
	sp := r.BeginSpan(0, "request", 1, 0)
	e.At(5, func() { r.EndSpan(e.Now(), sp) })
	e.At(9, func() { r.EndSpan(e.Now(), sp) }) // stale completion
	e.Run(10)
	spans := r.Spans()
	if len(spans) != 1 || spans[0].End != 5 {
		t.Fatalf("spans = %+v, want one ending at 5", spans)
	}
	if r.UnmatchedEnds() != 1 {
		t.Errorf("UnmatchedEnds = %d, want 1", r.UnmatchedEnds())
	}
}
