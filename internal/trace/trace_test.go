package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"df3/internal/sim"
)

func sample() *Recorder {
	var r Recorder
	r.Add(1.5, "edge_latency", 1, 0.12)
	r.Add(2.0, "dcc_done", 2, 300)
	r.Record(Event{T: 3, Kind: "note", ID: 3, Value: 0, Detail: `with,comma "q"`})
	return &r
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample()
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != r.Len() {
		t.Fatalf("round trip lost events: %d vs %d", len(got), r.Len())
	}
	for i, e := range got {
		if e != r.Events()[i] {
			t.Errorf("event %d: %+v != %+v", i, e, r.Events()[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := sample()
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != r.Len() {
		t.Fatalf("round trip lost events")
	}
	for i, e := range got {
		if e != r.Events()[i] {
			t.Errorf("event %d mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	bad := "t,kind,id,value,detail\nnot-a-number,x,1,2,\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad time accepted")
	}
}

func TestFilter(t *testing.T) {
	r := sample()
	if got := r.Filter("edge_latency"); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("filter returned %v", got)
	}
	if got := r.Filter("absent"); got != nil {
		t.Errorf("filter on absent kind returned %v", got)
	}
}

func TestReplayOrdersByTime(t *testing.T) {
	events := []Event{
		{T: 5, Kind: "a", ID: 1},
		{T: 1, Kind: "b", ID: 2},
		{T: 3, Kind: "c", ID: 3},
	}
	e := sim.New()
	var order []uint64
	Replay(e, events, func(ev Event) {
		if e.Now() != ev.T {
			t.Errorf("event %d replayed at %v, recorded %v", ev.ID, e.Now(), ev.T)
		}
		order = append(order, ev.ID)
	})
	e.Run(10)
	want := []uint64{2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("replay order = %v", order)
		}
	}
}

// Property: CSV round-trip is lossless for arbitrary printable payloads.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(ts []uint32, vals []int32) bool {
		var r Recorder
		n := len(ts)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			r.Add(sim.Time(ts[i]), "k", uint64(i), float64(vals[i]))
		}
		var b strings.Builder
		if err := r.WriteCSV(&b); err != nil {
			return false
		}
		got, err := ReadCSV(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if len(got) != r.Len() {
			return false
		}
		for i := range got {
			if got[i] != r.Events()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	var r Recorder
	r.Add(0, "lat", 1, 10)
	r.Add(5, "lat", 2, 20)
	r.Add(10, "lat", 3, 30)
	r.Add(1, "drop", 4, 0)
	sums := Summarize(r.Events())
	if len(sums) != 2 {
		t.Fatalf("%d kinds", len(sums))
	}
	// Sorted: drop, lat.
	if sums[0].Kind != "drop" || sums[1].Kind != "lat" {
		t.Fatalf("order: %v %v", sums[0].Kind, sums[1].Kind)
	}
	lat := sums[1]
	if lat.Count != 3 || lat.Mean != 20 || lat.Median != 20 || lat.Max != 30 {
		t.Errorf("lat summary %+v", lat)
	}
	if lat.First != 0 || lat.Last != 10 {
		t.Errorf("span %v..%v", lat.First, lat.Last)
	}
	if lat.Rate() != 0.3 {
		t.Errorf("rate = %v", lat.Rate())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); len(got) != 0 {
		t.Errorf("summaries of empty trace: %v", got)
	}
}

func TestSummaryRateDegenerate(t *testing.T) {
	s := Summary{Count: 5, First: 3, Last: 3}
	if s.Rate() != 0 {
		t.Errorf("zero-span rate = %v", s.Rate())
	}
}
