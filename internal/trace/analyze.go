package trace

import (
	"sort"

	"df3/internal/metrics"
)

// Summary describes the value distribution of one event kind.
type Summary struct {
	Kind   string
	Count  int
	Mean   float64
	Median float64
	P99    float64
	Max    float64
	First  float64 // earliest event time
	Last   float64 // latest event time
}

// Summarize groups events by kind and computes value distributions —
// the analysis behind `df3trace`.
func Summarize(events []Event) []Summary {
	byKind := map[string]*metrics.Sample{}
	firsts := map[string]float64{}
	lasts := map[string]float64{}
	for _, e := range events {
		s, ok := byKind[e.Kind]
		if !ok {
			s = &metrics.Sample{}
			byKind[e.Kind] = s
			firsts[e.Kind] = e.T
			lasts[e.Kind] = e.T
		}
		s.Observe(e.Value)
		if e.T < firsts[e.Kind] {
			firsts[e.Kind] = e.T
		}
		if e.T > lasts[e.Kind] {
			lasts[e.Kind] = e.T
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]Summary, 0, len(kinds))
	for _, k := range kinds {
		s := byKind[k]
		out = append(out, Summary{
			Kind:   k,
			Count:  s.Count(),
			Mean:   s.Mean(),
			Median: s.Median(),
			P99:    s.P99(),
			Max:    s.Max(),
			First:  firsts[k],
			Last:   lasts[k],
		})
	}
	return out
}

// Rate returns events of the kind per second of trace span, or 0.
func (s Summary) Rate() float64 {
	span := s.Last - s.First
	if span <= 0 {
		return 0
	}
	return float64(s.Count) / span
}
