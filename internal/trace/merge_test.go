package trace

import "testing"

func TestMergeRemapsSpansAndProcesses(t *testing.T) {
	a := NewRecorder(0)
	a.BeginProcess("city-0")
	ra := a.BeginSpan(1, "request", 10, 0)
	ca := a.BeginSpan(2, "queue", 0, ra)
	a.EndSpan(3, ca)
	a.EndSpan(4, ra)

	b := NewRecorder(0)
	b.BeginProcess("city-1")
	rb := b.BeginSpan(5, "request", 20, 0)
	cb := b.BeginSpan(6, "compute", 0, rb)
	b.EndSpan(7, cb)
	b.EndSpan(8, rb)
	leak := b.BeginSpan(9, "open", 21, 0)
	_ = leak

	a.Merge(b)

	if got := a.Processes(); len(got) != 2 || got[0] != "city-0" || got[1] != "city-1" {
		t.Fatalf("processes = %v", got)
	}
	spans := a.Spans()
	if len(spans) != 4 {
		t.Fatalf("%d completed spans, want 4", len(spans))
	}
	// IDs must stay unique and parent links intact after the remap.
	seen := map[SpanID]Span{}
	for _, sp := range spans {
		if _, dup := seen[sp.ID]; dup {
			t.Fatalf("duplicate span id %d after merge", sp.ID)
		}
		seen[sp.ID] = sp
	}
	for _, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		p, ok := seen[sp.Parent]
		if !ok {
			t.Fatalf("span %d parent %d missing after merge", sp.ID, sp.Parent)
		}
		if p.Proc != sp.Proc {
			t.Fatalf("span %d crossed processes: %d vs parent %d", sp.ID, sp.Proc, p.Proc)
		}
	}
	// The merged-in spans carry the remapped process.
	var merged int
	for _, sp := range spans {
		if sp.Proc == 2 {
			merged++
			if sp.Trace != 20 {
				t.Fatalf("merged span trace id %d, want 20 (pass-through)", sp.Trace)
			}
		}
	}
	if merged != 2 {
		t.Fatalf("%d spans in merged process, want 2", merged)
	}
	// The still-open span from b survives as open in a.
	if open := a.OpenSpans(); len(open) != 1 || open[0].Stage != "open" || open[0].Proc != 2 {
		t.Fatalf("open spans after merge: %+v", open)
	}
	// Post-merge recording cannot collide with merged ids.
	fresh := a.BeginSpan(10, "later", 30, 0)
	if _, dup := seen[fresh]; dup {
		t.Fatalf("fresh span id %d collides with merged ids", fresh)
	}
}

func TestMergeNilSafe(t *testing.T) {
	var r *Recorder
	r.Merge(NewRecorder(0)) // must not panic
	a := NewRecorder(0)
	a.Merge(nil)
	if len(a.Spans()) != 0 {
		t.Fatal("merge of nil produced spans")
	}
}

func TestMergeCountsHygiene(t *testing.T) {
	a := NewRecorder(0)
	b := NewRecorder(0)
	b.EndSpan(1, 99)          // unmatched
	b.BeginSpan(1, "x", 0, 7) // orphan parent
	a.Merge(b)
	if a.UnmatchedEnds() != 1 || a.OrphanBegins() != 1 {
		t.Fatalf("hygiene counters not merged: %d unmatched, %d orphans",
			a.UnmatchedEnds(), a.OrphanBegins())
	}
}
