package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event JSON format ("X"
// complete events plus "M" metadata), which Perfetto and chrome://tracing
// open directly. Timestamps and durations are microseconds; we map one
// simulated second to one second of trace time (1e6 µs).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   jsonMicros     `json:"ts"`
	Dur  *jsonMicros    `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// jsonMicros renders a microsecond quantity with fixed nanosecond precision
// so exports are byte-stable across runs (golden-file friendly).
type jsonMicros float64

func (m jsonMicros) MarshalJSON() ([]byte, error) {
	return strconv.AppendFloat(nil, float64(m), 'f', 3, 64), nil
}

// WriteChrome exports the completed spans (plus process-name metadata) as
// Chrome trace-event JSON. Open Perfetto (ui.perfetto.dev), drag the file
// in, and each request renders as a track of nested stage slices.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChromeSpans(w, r.Spans(), r.Processes())
}

// WriteChromeSpans exports spans as Chrome trace-event JSON. procs, when
// non-nil, labels process i+1 with procs[i]; pass nil when labels are
// unknown (e.g. converting a bare span JSONL file).
func WriteChromeSpans(w io.Writer, spans []Span, procs []string) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}
	for i, label := range procs {
		err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": label},
		})
		if err != nil {
			return err
		}
	}
	for _, sp := range spans {
		pid := sp.Proc
		if pid == 0 {
			pid = 1
		}
		dur := jsonMicros(sp.Duration() * 1e6)
		args := map[string]any{"id": uint64(sp.ID)}
		if sp.Parent != 0 {
			args["parent"] = uint64(sp.Parent)
		}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		err := emit(chromeEvent{
			Name: sp.Stage, Cat: "df3", Ph: "X",
			Ts: jsonMicros(sp.Begin * 1e6), Dur: &dur,
			Pid: pid, Tid: sp.Trace, Args: args,
		})
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// WriteSpansJSONL emits completed spans as JSON lines, one Span per line.
func (r *Recorder) WriteSpansJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range r.Spans() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// ReadSpansJSONL parses spans written by WriteSpansJSONL.
func ReadSpansJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for dec.More() {
		var sp Span
		if err := dec.Decode(&sp); err != nil {
			return nil, fmt.Errorf("trace: spans jsonl: %w", err)
		}
		out = append(out, sp)
	}
	return out, nil
}
