package trace

import (
	"sort"

	"df3/internal/sim"
)

// StageSummary aggregates the durations of every span sharing one stage
// label — the per-stage latency breakdown behind `df3trace spans`.
type StageSummary struct {
	Stage string
	Count int
	Total sim.Time
	Mean  sim.Time
	P50   sim.Time
	P99   sim.Time
	Max   sim.Time
}

// SummarizeStages groups spans by stage and reports duration statistics,
// sorted by descending total duration (the stages that cost the most wall
// time first).
func SummarizeStages(spans []Span) []StageSummary {
	byStage := map[string][]float64{}
	for _, sp := range spans {
		byStage[sp.Stage] = append(byStage[sp.Stage], sp.Duration())
	}
	stages := make([]string, 0, len(byStage))
	for stage := range byStage {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	out := make([]StageSummary, 0, len(byStage))
	for _, stage := range stages {
		ds := byStage[stage]
		sort.Float64s(ds)
		var total float64
		for _, d := range ds {
			total += d
		}
		q := func(p float64) sim.Time {
			idx := int(p * float64(len(ds)-1))
			return ds[idx]
		}
		out = append(out, StageSummary{
			Stage: stage,
			Count: len(ds),
			Total: total,
			Mean:  total / float64(len(ds)),
			P50:   q(0.50),
			P99:   q(0.99),
			Max:   ds[len(ds)-1],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// StageSelf is the self-time of one stage: wall time inside spans of that
// stage not covered by any child span. Summed over a request tree the self
// times decompose end-to-end latency into exclusive stage contributions.
type StageSelf struct {
	Stage string
	Self  sim.Time
}

// SelfTimes attributes each span's duration minus the union of its
// children's intervals (clipped to the span) to the span's stage, sorted by
// descending self time. This is the "where did the latency actually go"
// view: a root request span with long children has little self time.
func SelfTimes(spans []Span) []StageSelf {
	children := childIndex(spans)
	self := map[string]float64{}
	for _, sp := range spans {
		covered := intervalUnion(children[sp.ID], sp.Begin, sp.End)
		self[sp.Stage] += sp.Duration() - covered
	}
	out := make([]StageSelf, 0, len(self))
	for stage, s := range self {
		out = append(out, StageSelf{Stage: stage, Self: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// PathSeg is one segment of a critical path: the stage that was active and
// the interval it exclusively owned.
type PathSeg struct {
	Stage string
	From  sim.Time
	To    sim.Time
}

// CriticalPath walks the span tree from root downward, descending into the
// child that covers each moment, and returns the sequence of (stage,
// interval) segments that account for the root's entire duration.
func CriticalPath(spans []Span, root SpanID) []PathSeg {
	byID := map[SpanID]Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	children := childIndex(spans)
	rootSp, ok := byID[root]
	if !ok {
		return nil
	}
	return descend(rootSp, byID, children)
}

func descend(sp Span, byID map[SpanID]Span, children map[SpanID][]Span) []PathSeg {
	var segs []PathSeg
	cur := sp.Begin
	for _, ch := range children[sp.ID] {
		if ch.End <= cur || ch.Begin >= sp.End {
			continue
		}
		if ch.Begin > cur {
			segs = append(segs, PathSeg{Stage: sp.Stage, From: cur, To: ch.Begin})
		}
		segs = append(segs, descend(ch, byID, children)...)
		if ch.End > cur {
			cur = ch.End
		}
	}
	if cur < sp.End {
		segs = append(segs, PathSeg{Stage: sp.Stage, From: cur, To: sp.End})
	}
	return segs
}

// Roots returns the root spans (Parent == 0) sorted by descending duration —
// the slowest requests first, ready for critical-path extraction.
func Roots(spans []Span) []Span {
	var out []Span
	for _, sp := range spans {
		if sp.Parent == 0 {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Duration(), out[j].Duration()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// childIndex maps each parent id to its children sorted by begin time.
func childIndex(spans []Span) map[SpanID][]Span {
	children := map[SpanID][]Span{}
	for _, sp := range spans {
		if sp.Parent != 0 {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	//df3:unordered-ok each iteration sorts one key's slice in place; no cross-key state
	for id := range children {
		cs := children[id]
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Begin != cs[j].Begin {
				return cs[i].Begin < cs[j].Begin
			}
			return cs[i].ID < cs[j].ID
		})
	}
	return children
}

// intervalUnion returns the total length of the union of the child
// intervals clipped to [lo, hi].
func intervalUnion(cs []Span, lo, hi sim.Time) sim.Time {
	var covered float64
	cur := lo
	for _, c := range cs {
		b, e := c.Begin, c.End
		if b < cur {
			b = cur
		}
		if e > hi {
			e = hi
		}
		if e <= b {
			continue
		}
		covered += e - b
		cur = e
	}
	return covered
}
