package trace

import (
	"sort"

	"df3/internal/sim"
)

// SpanID identifies one span within a Recorder. Zero means "no span" — every
// span method treats it (and a nil Recorder) as a no-op, which is what lets
// the instrumented hot paths run allocation-free when tracing is off.
type SpanID uint64

// Span is one causal interval in a request's (or job's, or machine's) life:
// a stage with a begin and end time, optionally parented to the stage that
// caused it. The parent links turn a trace into a tree per request, which is
// how end-to-end latency decomposes into queue/network/compute/retry-wait.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	// Trace correlates every span of one request/job; machine-window spans
	// use a per-machine tag. A Begin with Trace 0 inherits the parent's.
	Trace uint64 `json:"trace,omitempty"`
	// Proc groups spans into processes (one per traced scenario) so a
	// single Recorder can hold several runs side by side in Perfetto.
	Proc   int      `json:"proc,omitempty"`
	Stage  string   `json:"stage"`
	Begin  sim.Time `json:"begin"`
	End    sim.Time `json:"end"`
	Detail string   `json:"detail,omitempty"`
}

// Duration returns End − Begin.
func (s Span) Duration() sim.Time { return s.End - s.Begin }

// NewRecorder returns a recorder whose event and completed-span buffers are
// each bounded to capacity entries (0 = unbounded). When a buffer is full
// the oldest entry is overwritten and the corresponding dropped counter
// advances — long city runs with tracing on stay at bounded memory.
func NewRecorder(capacity int) *Recorder {
	r := &Recorder{}
	r.SetCapacity(capacity)
	return r
}

// SetCapacity bounds the event and completed-span buffers (0 = unbounded).
// It must be called before anything is recorded.
func (r *Recorder) SetCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	if len(r.events) > 0 || len(r.spans) > 0 || len(r.open) > 0 {
		panic("trace: SetCapacity after recording started")
	}
	r.cap = capacity
}

// Capacity returns the configured buffer bound (0 = unbounded).
func (r *Recorder) Capacity() int { return r.cap }

// DroppedEvents returns how many events were evicted from the ring.
func (r *Recorder) DroppedEvents() int64 { return r.evDropped }

// DroppedSpans returns how many completed spans were evicted from the ring.
func (r *Recorder) DroppedSpans() int64 { return r.spDropped }

// BeginProcess opens a new process scope (returning its 1-based id): spans
// begun afterwards carry it, and the Chrome exporter renders each process
// as its own named track group. Use one process per traced scenario.
func (r *Recorder) BeginProcess(label string) int {
	if r == nil {
		return 0
	}
	r.procs = append(r.procs, label)
	r.curProc = len(r.procs)
	return r.curProc
}

// Processes returns the registered process labels in BeginProcess order.
func (r *Recorder) Processes() []string {
	if r == nil {
		return nil
	}
	return r.procs
}

// BeginSpan opens a span at time t. traceID correlates the request or job
// the span belongs to; 0 inherits the open parent's trace. parent is the
// causing span (0 for a root). Nil recorders return 0, and every other span
// method ignores id 0, so instrumented code needs no tracing-enabled checks.
func (r *Recorder) BeginSpan(t sim.Time, stage string, traceID uint64, parent SpanID) SpanID {
	if r == nil {
		return 0
	}
	if r.open == nil {
		r.open = map[SpanID]Span{}
	}
	if parent != 0 {
		if ps, ok := r.open[parent]; ok {
			if traceID == 0 {
				traceID = ps.Trace
			}
		} else {
			// The parent is not open: either it never existed or it ended
			// before this child began. Both break the causal tree.
			r.orphanBegins++
		}
	}
	r.nextSpan++
	id := r.nextSpan
	r.open[id] = Span{
		ID: id, Parent: parent, Trace: traceID, Proc: r.curProc,
		Stage: stage, Begin: t, End: -1,
	}
	return id
}

// EndSpan closes an open span at time t. Ending id 0, an unknown id or an
// already-ended span is a counted no-op.
func (r *Recorder) EndSpan(t sim.Time, id SpanID) { r.EndSpanDetail(t, id, "") }

// EndSpanDetail is EndSpan with a free-form annotation (outcome, route...).
func (r *Recorder) EndSpanDetail(t sim.Time, id SpanID, detail string) {
	if r == nil || id == 0 {
		return
	}
	sp, ok := r.open[id]
	if !ok {
		r.unmatchedEnds++
		return
	}
	delete(r.open, id)
	sp.End = t
	if detail != "" {
		sp.Detail = detail
	}
	r.pushSpan(sp)
}

// Instant records a zero-duration span at t — a point annotation (a decide
// outcome, a timeout firing) that still hangs off the causal tree.
func (r *Recorder) Instant(t sim.Time, stage string, traceID uint64, parent SpanID, detail string) {
	if r == nil {
		return
	}
	id := r.BeginSpan(t, stage, traceID, parent)
	r.EndSpanDetail(t, id, detail)
}

// SetSink installs a hook invoked with a copy of every completed span, in
// completion order, before the span enters the bounded ring. A sink sees
// spans the ring later evicts, which is what lets an always-on flight
// recorder ride a small-capacity recorder without losing recency. The sink
// runs on the recording goroutine and must be pure observation: it must not
// call back into the recorder or touch simulation state. Nil recorders and
// a nil fn are no-ops.
func (r *Recorder) SetSink(fn func(Span)) {
	if r == nil {
		return
	}
	r.sink = fn
}

// pushSpan appends a completed span, evicting the oldest at capacity.
func (r *Recorder) pushSpan(sp Span) {
	if r.sink != nil {
		r.sink(sp)
	}
	if r.cap > 0 && len(r.spans) == r.cap {
		r.spans[r.spHead] = sp
		r.spHead++
		if r.spHead == r.cap {
			r.spHead = 0
		}
		r.spDropped++
		return
	}
	r.spans = append(r.spans, sp)
}

// Spans returns the completed spans in completion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	if r.spHead == 0 {
		return r.spans
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.spHead:]...)
	return append(out, r.spans[:r.spHead]...)
}

// OpenSpans returns spans begun but not yet ended, ordered by begin time —
// in a drained simulation this should be empty; anything left is a
// lifecycle leak worth flagging.
func (r *Recorder) OpenSpans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.open))
	for _, sp := range r.open {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Begin != out[j].Begin {
			return out[i].Begin < out[j].Begin
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// UnmatchedEnds counts EndSpan calls that found no open span.
func (r *Recorder) UnmatchedEnds() int64 {
	if r == nil {
		return 0
	}
	return r.unmatchedEnds
}

// OrphanBegins counts BeginSpan calls whose non-zero parent was not open.
func (r *Recorder) OrphanBegins() int64 {
	if r == nil {
		return 0
	}
	return r.orphanBegins
}
