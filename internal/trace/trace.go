// Package trace records simulation events to CSV or JSON lines for offline
// analysis and supports replaying recorded request traces, so that an
// experiment's exact workload can be re-run against a different platform
// configuration (the A/B methodology behind E4/E5/E12).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"df3/internal/sim"
)

// Event is one traced record.
type Event struct {
	T    sim.Time `json:"t"`
	Kind string   `json:"kind"`
	ID   uint64   `json:"id"`
	// Value carries the kind-specific payload (latency, work, temp...).
	Value float64 `json:"value"`
	// Detail is an optional free-form annotation.
	Detail string `json:"detail,omitempty"`
}

// Recorder buffers events and causal spans in memory. The zero value is an
// unbounded recorder; NewRecorder bounds both buffers to a ring of fixed
// capacity so tracing a city-year run cannot exhaust memory.
type Recorder struct {
	events    []Event
	evHead    int
	evDropped int64

	cap int // ring capacity for events and completed spans; 0 = unbounded

	// Span state (span.go).
	spans         []Span
	spHead        int
	spDropped     int64
	open          map[SpanID]Span
	nextSpan      SpanID
	unmatchedEnds int64
	orphanBegins  int64
	procs         []string
	curProc       int
	sink          func(Span)
}

// Record appends one event, evicting the oldest at capacity.
func (r *Recorder) Record(ev Event) {
	if r.cap > 0 && len(r.events) == r.cap {
		r.events[r.evHead] = ev
		r.evHead++
		if r.evHead == r.cap {
			r.evHead = 0
		}
		r.evDropped++
		return
	}
	r.events = append(r.events, ev)
}

// Add is a convenience for Record.
func (r *Recorder) Add(t sim.Time, kind string, id uint64, value float64) {
	r.Record(Event{T: t, Kind: kind, ID: id, Value: value})
}

// Events returns all retained events in record order.
func (r *Recorder) Events() []Event {
	if r.evHead == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.evHead:]...)
	return append(out, r.events[:r.evHead]...)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Filter returns events of one kind.
func (r *Recorder) Filter(kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits all events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "kind", "id", "value", "detail"}); err != nil {
		return err
	}
	for _, e := range r.Events() {
		rec := []string{
			strconv.FormatFloat(e.T, 'g', -1, 64),
			e.Kind,
			strconv.FormatUint(e.ID, 10),
			strconv.FormatFloat(e.Value, 'g', -1, 64),
			e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses events written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	var out []Event
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+1, len(row))
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", i+1, err)
		}
		id, err := strconv.ParseUint(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d id: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d value: %w", i+1, err)
		}
		out = append(out, Event{T: t, Kind: row[1], ID: id, Value: v, Detail: row[4]})
	}
	return out, nil
}

// WriteJSONL emits events as JSON lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses JSON-lines events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Replay schedules each event's callback at its recorded time on the
// engine. Events are replayed in time order regardless of record order.
func Replay(e *sim.Engine, events []Event, fn func(ev Event)) {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
	for _, ev := range sorted {
		ev := ev
		e.At(ev.T, func() { fn(ev) })
	}
}
