package main

import (
	"fmt"
	"os"

	"df3/internal/city"
	"df3/internal/network"
	"df3/internal/report"
	"df3/internal/sim"
)

// runShardprofMode profiles the E19-shaped federation: the same scenario
// the scale sweep measures, but with the kernel profiler on, answering
// *why* the speedup is what it is — which shards sit idle at barriers,
// which LP's min-next-event sets the windows, and which boundary pair's
// lookahead binds the window width. A second, unprofiled twin run proves
// the profiler is pure observation (identical checksums).
func runShardprofMode(cfg benchConfig, seed uint64) {
	cities, horizon := 10, 6*sim.Hour
	if cfg.quick {
		cities, horizon = 4, 2*sim.Hour
	}
	ccfg := city.DefaultConfig()
	ccfg.Buildings = 2
	ccfg.RoomsPerBuilding = 4
	ccfg.DatacenterNodes = 2
	backbone := network.DefaultBackbone()
	backbone.Staging = 120

	build := func() *city.Federation {
		return city.BuildFederation(city.FederationConfig{
			Seed: seed, Cities: cities, Shards: cfg.shards, City: ccfg,
			Backbone: backbone,
		})
	}
	run := func(f *city.Federation) {
		f.StartEdgeTraffic(horizon, 0.5)
		f.StartInterCityDCC(horizon, 2)
		f.Run(horizon + sim.Hour)
	}

	fmt.Printf("df3bench: shard profile, %d cities on %d shards, seed %d\n", cities, cfg.shards, seed)
	prof := build()
	prof.Kernel.EnableProfile()
	run(prof)
	twin := build()
	run(twin)

	rep, ok := prof.Kernel.ProfileReport()
	if !ok {
		fmt.Fprintln(os.Stderr, "df3bench: profiler produced no report")
		os.Exit(1)
	}
	st := prof.Kernel.Stats()
	fmt.Printf("windows %d (%d limited), parallel wall %.3fs, lookahead %.0f sim-s, critical-path speedup %.2fx\n",
		rep.Windows, rep.LimitedWindows, rep.Wall.Seconds(), float64(rep.Lookahead), st.Speedup())
	fmt.Printf("profiled checksum identical to unprofiled twin: %v\n\n", prof.Checksum() == twin.Checksum())

	shardTable := report.NewTable("per-shard busy vs barrier-idle",
		"shard", "lps", "events", "busy_s", "idle_s", "util")
	for _, s := range rep.Shards {
		shardTable.Row(s.Shard, s.LPs, int64(s.Events),
			s.Busy.Seconds(), s.Idle.Seconds(), s.Utilization)
	}
	limTable := report.NewTable("barrier limiters (LPs whose min-next-event set the window)",
		"lp", "name", "shard", "windows", "frac")
	for i, l := range rep.Limiters {
		if i == 10 {
			break
		}
		limTable.Row(l.LP, l.Name, l.Shard, int64(l.Windows), l.Frac)
	}
	pairTable := report.NewTable("cross-shard boundary pairs (a pair binds when its observed min delay sits at the lookahead)",
		"src", "dst", "msgs", "bytes", "min_delay_s", "slack_s", "binds")
	for _, p := range rep.Pairs {
		// Observed delays never undercut the configured lookahead; a pair
		// within 10% of it is the constraint a larger lookahead would hit.
		slack := float64(p.MinDelay - rep.Lookahead)
		binds := "no"
		if slack <= 0.1*float64(rep.Lookahead) {
			binds = "yes"
		}
		pairTable.Row(p.SrcShard, p.DstShard, p.Messages, p.Bytes, float64(p.MinDelay), slack, binds)
	}
	for _, t := range []*report.Table{shardTable, limTable, pairTable} {
		if err := t.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
