package main

import (
	"path/filepath"
	"testing"

	"df3/internal/checkpoint"
)

// discard swallows progress lines in tests.
func discard(string) {}

// TestLongrunResumeEquivalence is the resumable-batch contract: a run
// interrupted at a checkpoint and resumed from disk reaches the same
// final checksum as the uninterrupted run — and the resume path itself
// proves bit-for-bit equivalence at the restore point via Verify.
func TestLongrunResumeEquivalence(t *testing.T) {
	r := longrunRecipe{Seed: 11, Cities: 3, Shards: 2, HorizonDays: 0.5}
	dir := t.TempDir()

	uninterrupted, err := runLongrun(r, "", discard)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Same run with a checkpoint cadence: the cadence must not perturb
	// the observable simulation (pauses fingerprint the pending heap, but
	// never the checksum).
	rc := r
	rc.CheckpointDays = 0.1
	checkpointed, err := runLongrun(rc, dir, discard)
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if checkpointed != uninterrupted {
		t.Fatalf("checkpoint cadence changed the run: 0x%016x vs 0x%016x", checkpointed, uninterrupted)
	}

	snap, _, skipped, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped checkpoints: %v", skipped)
	}
	if snap.Meta.SimTime <= 0 || snap.Meta.Horizon <= snap.Meta.SimTime {
		t.Fatalf("implausible checkpoint: sim time %v, horizon %v", snap.Meta.SimTime, snap.Meta.Horizon)
	}

	// Resume from a mid-run checkpoint (0.2 of 0.5 days) and run out the
	// horizon.
	path := filepath.Join(dir, checkpoint.FileName(0.2*86400))
	resumed, err := runResume(path, "", discard)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed != uninterrupted {
		t.Fatalf("resumed checksum 0x%016x != uninterrupted 0x%016x", resumed, uninterrupted)
	}

	// A resume that keeps checkpointing continues the original cadence.
	dir2 := t.TempDir()
	resumed2, err := runResume(path, dir2, discard)
	if err != nil {
		t.Fatalf("resume with checkpoints: %v", err)
	}
	if resumed2 != uninterrupted {
		t.Fatalf("checkpointing resume checksum 0x%016x != uninterrupted 0x%016x", resumed2, uninterrupted)
	}
	if _, _, _, err := checkpoint.Latest(dir2); err != nil {
		t.Fatalf("resumed run cut no checkpoints: %v", err)
	}
}

// TestResumeRejectsForeignRecipe: a snapshot whose sealed recipe is not a
// longrun recipe (or is damaged) must fail the restore, not fork history.
func TestResumeRejectsForeignRecipe(t *testing.T) {
	r := longrunRecipe{Seed: 5, Cities: 2, Shards: 1, HorizonDays: 0.2}
	f := buildLongrun(r)
	f.Run(100)
	snap := checkpoint.Capture(f, checkpoint.Meta{Horizon: 0.2 * 86400}, []byte(`{"seed":5,"cities":999}`))
	dir := t.TempDir()
	if _, err := checkpoint.WriteAtomic(dir, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpoint.FileName(float64(snap.Meta.SimTime)))
	if _, err := runResume(path, "", discard); err == nil {
		t.Fatal("resume accepted a snapshot sealed with a mismatched recipe")
	}
}
