// Long-running federation batch mode: -longrun executes a multi-day
// federation sweep as one resumable job. With -checkpoint-every /
// -checkpoint-dir the run seals periodic snapshots; -resume picks the run
// back up from a snapshot file, rebuilds the federation from the sealed
// recipe, fast-forwards to the captured sim time, proves bit-for-bit
// equivalence (checkpoint.Verify), and continues to the original horizon.
// The final checksum line is identical whether the run was interrupted
// zero, one or many times.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"df3/internal/checkpoint"
	"df3/internal/city"
	"df3/internal/network"
	"df3/internal/sim"
)

// runLongrunMode is the -longrun / -resume entry point.
func runLongrunMode(cfg benchConfig, seed uint64) {
	progress := func(line string) { fmt.Println(line) }
	var sum uint64
	var err error
	if cfg.resume != "" {
		sum, err = runResume(cfg.resume, cfg.checkpointDir, progress)
	} else {
		r := longrunRecipe{
			Seed: seed, Cities: cfg.cities, Shards: cfg.shards,
			HorizonDays: cfg.longrun, CheckpointDays: cfg.checkpointEvery,
		}
		fmt.Printf("df3bench: longrun %g days, %d cities × %d shards, seed %d\n",
			r.HorizonDays, r.Cities, r.Shards, r.Seed)
		sum, err = runLongrun(r, cfg.checkpointDir, progress)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# df3bench federation checksum: 0x%016x\n", sum)
}

// longrunRecipe is the build recipe a longrun checkpoint seals: every
// input that shapes the simulation. A resume rebuilds from the sealed
// copy, never from flags, so a resumed run cannot silently fork history.
//
// CheckpointDays is part of the recipe because segment boundaries are
// simulation inputs: pausing Run at a boundary leaves a fingerprint in
// the pending-event heap, so a resume must replay the exact boundary
// sequence the original cut to verify bit-for-bit.
type longrunRecipe struct {
	Seed           uint64  `json:"seed"`
	Cities         int     `json:"cities"`
	Shards         int     `json:"shards"`
	HorizonDays    float64 `json:"horizon_days"`
	CheckpointDays float64 `json:"checkpoint_days,omitempty"`
}

func (r longrunRecipe) marshal() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(err) // a struct of scalars cannot fail to marshal
	}
	return b
}

// buildLongrun constructs and arms the longrun federation: the E19 city
// template (small homogeneous cities) under steady edge traffic plus
// inter-city batch offload across the backbone — enough cross-shard
// coupling to make the resumed-equivalence claim non-trivial.
func buildLongrun(r longrunRecipe) *city.Federation {
	ccfg := city.DefaultConfig()
	ccfg.Buildings = 2
	ccfg.RoomsPerBuilding = 4
	ccfg.DatacenterNodes = 2
	backbone := network.DefaultBackbone()
	backbone.Staging = 120
	f := city.BuildFederation(city.FederationConfig{
		Seed: r.Seed, Cities: r.Cities, Shards: r.Shards, City: ccfg,
		Backbone: backbone,
	})
	horizon := sim.Time(r.HorizonDays * sim.Day)
	f.StartEdgeTraffic(horizon, 0.5)
	f.StartInterCityDCC(horizon, 2)
	return f
}

// runLongrun executes the whole horizon, pausing at every CheckpointDays
// boundary and writing a durable snapshot there when dir is set. Returns
// the final federation checksum.
func runLongrun(r longrunRecipe, dir string, progress func(string)) (uint64, error) {
	f := buildLongrun(r)
	horizon := sim.Time(r.HorizonDays * sim.Day)
	if err := runSegments(f, r, 0, horizon, dir, progress); err != nil {
		return 0, err
	}
	return f.Checksum(), nil
}

// runResume restores a longrun from a checkpoint file: rebuild from the
// sealed recipe, fast-forward through the same segment boundaries the
// original cut, verify equivalence, then continue to the sealed horizon
// (writing further checkpoints when dir is set).
func runResume(path string, dir string, progress func(string)) (uint64, error) {
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var r longrunRecipe
	if err := json.Unmarshal(snap.Config, &r); err != nil {
		return 0, fmt.Errorf("%s: sealed recipe is not a longrun recipe: %w", path, err)
	}
	f := buildLongrun(r)
	progress(fmt.Sprintf("df3bench: resuming %d cities × %d shards from %s (sim day %.2f of %g)",
		r.Cities, r.Shards, path, float64(snap.Meta.SimTime)/sim.Day, r.HorizonDays))
	for _, t := range boundaries(r, 0, snap.Meta.SimTime) {
		f.Run(t)
	}
	f.Run(snap.Meta.SimTime)
	if err := checkpoint.Verify(f, snap, r.marshal()); err != nil {
		return 0, fmt.Errorf("resume diverged from checkpoint: %w", err)
	}
	progress("df3bench: checkpoint verified bit-for-bit, continuing")
	if err := runSegments(f, r, snap.Meta.SimTime, snap.Meta.Horizon, dir, progress); err != nil {
		return 0, err
	}
	return f.Checksum(), nil
}

// boundaries lists the segment cut points in (from, to): the multiples of
// the sealed cadence. Boundaries are absolute sim times, so an
// interrupted run and its resume pause Run at identical instants — the
// precondition for the pending-event heap to match at Verify.
func boundaries(r longrunRecipe, from, to sim.Time) []sim.Time {
	if r.CheckpointDays <= 0 {
		return nil
	}
	every := sim.Time(r.CheckpointDays * sim.Day)
	var cuts []sim.Time
	for n := int(from/every) + 1; ; n++ {
		t := sim.Time(n) * every
		if t >= to {
			return cuts
		}
		cuts = append(cuts, t)
	}
}

// runSegments advances f from its current position to horizon, pausing at
// every sealed cadence boundary and snapshotting there when dir is set.
func runSegments(f *city.Federation, r longrunRecipe, from, horizon sim.Time, dir string, progress func(string)) error {
	for _, t := range boundaries(r, from, horizon) {
		f.Run(t)
		if dir == "" {
			continue
		}
		snap := checkpoint.Capture(f, checkpoint.Meta{Horizon: horizon}, r.marshal())
		path, err := checkpoint.WriteAtomic(dir, snap)
		if err != nil {
			return fmt.Errorf("checkpoint at sim day %.2f: %w", float64(t)/sim.Day, err)
		}
		progress(fmt.Sprintf("df3bench: checkpoint %s (sim day %.2f, checksum 0x%016x)",
			path, float64(t)/sim.Day, snap.Meta.Checksum))
	}
	f.Run(horizon)
	return nil
}
