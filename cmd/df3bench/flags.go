package main

import (
	"fmt"
	"strings"

	"df3/internal/cliutil"
	"df3/internal/experiments"
)

// benchConfig is the parsed flag set, separated from main so the
// validation rules are unit-testable.
type benchConfig struct {
	quick      bool
	run        string
	list       bool
	shards     int
	csvDir     string
	cpuProfile string
	memProfile string
	tracePath  string

	// Shard-profiler mode.
	shardprof bool

	// Long-running resumable batch mode.
	longrun         float64 // horizon in simulated days (0 = experiment mode)
	cities          int     // federation width (longrun only)
	checkpointEvery float64 // snapshot cadence in simulated days
	checkpointDir   string
	resume          string // checkpoint file to restore from
}

// traceCapable lists the experiments that honour Options.Tracer.
var traceCapable = map[string]bool{"E18": true}

// selection resolves -run into experiment descriptors ("" = all).
func (c benchConfig) selection() ([]experiments.Experiment, error) {
	if c.run == "" {
		return experiments.All(), nil
	}
	var sel []experiments.Experiment
	for _, id := range strings.Split(c.run, ",") {
		id = strings.TrimSpace(id)
		e := experiments.ByID(id)
		if e == nil {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		sel = append(sel, *e)
	}
	return sel, nil
}

// validate rejects invalid values and mutually exclusive combinations
// before any experiment runs, so a long full-fidelity sweep cannot die on
// its last line because an output path was mistyped.
func (c benchConfig) validate() error {
	if c.list {
		if c.run != "" || c.csvDir != "" || c.cpuProfile != "" || c.memProfile != "" || c.tracePath != "" {
			return fmt.Errorf("-list takes no other flags")
		}
		return nil
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one shard", c.shards)
	}
	if c.shardprof {
		// The profiled federation is E19-shaped and self-contained; only
		// -quick, -shards and -seed tune it.
		switch {
		case c.longrun != 0 || c.resume != "":
			return fmt.Errorf("-shardprof and -longrun/-resume are exclusive modes")
		case c.run != "" || c.tracePath != "" || c.csvDir != "":
			return fmt.Errorf("-shardprof is a self-contained profile run; -run/-trace/-csv do not apply")
		case c.cities != 0 || c.checkpointDir != "" || c.checkpointEvery != 0:
			return fmt.Errorf("-shardprof sizes its own federation; -cities and checkpoint flags do not apply")
		}
		return nil
	}
	if c.resume != "" {
		// Resume restores everything — shape, horizon, cadence — from the
		// recipe sealed in the snapshot, so those flags are noise here.
		// Only -checkpoint-dir applies: where to keep writing snapshots.
		switch {
		case c.longrun != 0:
			return fmt.Errorf("-resume and -longrun are exclusive: the horizon is sealed in the checkpoint")
		case c.run != "" || c.quick || c.tracePath != "":
			return fmt.Errorf("-resume is a batch restore; -run/-quick/-trace do not apply")
		case c.cities != 0:
			return fmt.Errorf("-cities is sealed in the checkpoint; drop it when resuming")
		case c.checkpointEvery != 0:
			return fmt.Errorf("-checkpoint-every is sealed in the checkpoint; drop it when resuming")
		}
		if c.checkpointDir != "" {
			if err := cliutil.CheckOutputDir(c.checkpointDir); err != nil {
				return fmt.Errorf("-checkpoint-dir: %w", err)
			}
		}
		return nil
	}
	if c.longrun != 0 {
		switch {
		case c.longrun < 0:
			return fmt.Errorf("-longrun %v: need a positive horizon in days", c.longrun)
		case c.run != "" || c.quick || c.tracePath != "" || c.csvDir != "":
			return fmt.Errorf("-longrun is a single federation batch; -run/-quick/-trace/-csv do not apply")
		case c.cities < 1:
			return fmt.Errorf("-longrun needs -cities (at least one)")
		case c.shards > c.cities:
			return fmt.Errorf("-shards %d exceeds -cities %d: a city is the unit of parallelism", c.shards, c.cities)
		}
		return c.validateCheckpointFlags()
	}
	if c.cities != 0 {
		return fmt.Errorf("-cities requires -longrun (experiments size their own federations)")
	}
	if c.checkpointDir != "" || c.checkpointEvery != 0 {
		return fmt.Errorf("checkpoint flags (-checkpoint-dir, -checkpoint-every) require -longrun or -resume")
	}
	sel, err := c.selection()
	if err != nil {
		return err
	}
	if c.tracePath != "" {
		traced := false
		for _, e := range sel {
			if traceCapable[e.ID] {
				traced = true
				break
			}
		}
		if !traced {
			return fmt.Errorf("-trace needs a trace-capable experiment in the selection (have: %s)", c.run)
		}
		if err := cliutil.CheckWritableFile(c.tracePath); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	for _, p := range []struct{ flag, path string }{
		{"-cpuprofile", c.cpuProfile},
		{"-memprofile", c.memProfile},
	} {
		if p.path == "" {
			continue
		}
		if err := cliutil.CheckWritableFile(p.path); err != nil {
			return fmt.Errorf("%s: %w", p.flag, err)
		}
	}
	if c.csvDir != "" {
		if err := cliutil.CheckOutputDir(c.csvDir); err != nil {
			return fmt.Errorf("-csv: %w", err)
		}
	}
	return nil
}

// validateCheckpointFlags checks the snapshot knobs shared by -longrun
// and -resume.
func (c benchConfig) validateCheckpointFlags() error {
	if c.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every %v: need a positive period in days", c.checkpointEvery)
	}
	if c.checkpointEvery != 0 && c.checkpointDir == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-dir")
	}
	if c.checkpointDir != "" && c.checkpointEvery == 0 {
		return fmt.Errorf("-checkpoint-dir requires -checkpoint-every (a cadence in days)")
	}
	if c.checkpointDir != "" {
		if err := cliutil.CheckOutputDir(c.checkpointDir); err != nil {
			return fmt.Errorf("-checkpoint-dir: %w", err)
		}
	}
	return nil
}
