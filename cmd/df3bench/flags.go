package main

import (
	"fmt"
	"strings"

	"df3/internal/cliutil"
	"df3/internal/experiments"
)

// benchConfig is the parsed flag set, separated from main so the
// validation rules are unit-testable.
type benchConfig struct {
	quick      bool
	run        string
	list       bool
	shards     int
	csvDir     string
	cpuProfile string
	memProfile string
	tracePath  string
}

// traceCapable lists the experiments that honour Options.Tracer.
var traceCapable = map[string]bool{"E18": true}

// selection resolves -run into experiment descriptors ("" = all).
func (c benchConfig) selection() ([]experiments.Experiment, error) {
	if c.run == "" {
		return experiments.All(), nil
	}
	var sel []experiments.Experiment
	for _, id := range strings.Split(c.run, ",") {
		id = strings.TrimSpace(id)
		e := experiments.ByID(id)
		if e == nil {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		sel = append(sel, *e)
	}
	return sel, nil
}

// validate rejects invalid values and mutually exclusive combinations
// before any experiment runs, so a long full-fidelity sweep cannot die on
// its last line because an output path was mistyped.
func (c benchConfig) validate() error {
	if c.list {
		if c.run != "" || c.csvDir != "" || c.cpuProfile != "" || c.memProfile != "" || c.tracePath != "" {
			return fmt.Errorf("-list takes no other flags")
		}
		return nil
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one shard", c.shards)
	}
	sel, err := c.selection()
	if err != nil {
		return err
	}
	if c.tracePath != "" {
		traced := false
		for _, e := range sel {
			if traceCapable[e.ID] {
				traced = true
				break
			}
		}
		if !traced {
			return fmt.Errorf("-trace needs a trace-capable experiment in the selection (have: %s)", c.run)
		}
		if err := cliutil.CheckWritableFile(c.tracePath); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	for _, p := range []struct{ flag, path string }{
		{"-cpuprofile", c.cpuProfile},
		{"-memprofile", c.memProfile},
	} {
		if p.path == "" {
			continue
		}
		if err := cliutil.CheckWritableFile(p.path); err != nil {
			return fmt.Errorf("%s: %w", p.flag, err)
		}
	}
	if c.csvDir != "" {
		if err := cliutil.CheckOutputDir(c.csvDir); err != nil {
			return fmt.Errorf("-csv: %w", err)
		}
	}
	return nil
}
