// Command df3bench regenerates the paper's figures and quantified claims.
// Every experiment in DESIGN.md's per-experiment index (E1–E19) and every
// ablation (A1–A5) is runnable by ID:
//
//	df3bench                 # run everything at full fidelity
//	df3bench -quick          # CI-speed versions (same shapes)
//	df3bench -run E1,E8      # a subset
//	df3bench -list           # show the index
//	df3bench -seed 7         # different random universe
//	df3bench -run E18 -trace chaos.json   # span-trace the chaos sweep for Perfetto
//	df3bench -run E2,E8 -shards 4         # multi-arm experiments on 4 parallel shards
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"df3/internal/experiments"
	"df3/internal/trace"
)

func main() {
	var cfg benchConfig
	flag.BoolVar(&cfg.quick, "quick", false, "run reduced-size experiments (same shapes, minutes faster)")
	flag.StringVar(&cfg.run, "run", "", "comma-separated experiment IDs (default: all)")
	flag.BoolVar(&cfg.list, "list", false, "list experiments and exit")
	seed := flag.Uint64("seed", 1, "random seed for every stochastic component")
	flag.IntVar(&cfg.shards, "shards", 1, "run multi-arm experiments on this many parallel shards (byte-identical results)")
	flag.StringVar(&cfg.csvDir, "csv", "", "also write every table as CSV into this directory")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile taken after the last experiment to this file")
	flag.StringVar(&cfg.tracePath, "trace", "", "record causal spans in trace-capable experiments (E18) and write Chrome trace-event JSON to this file")
	flag.Float64Var(&cfg.longrun, "longrun", 0, "run one federation batch for this many simulated days (resumable; exclusive with -run)")
	flag.IntVar(&cfg.cities, "cities", 0, "federation width for -longrun")
	flag.Float64Var(&cfg.checkpointEvery, "checkpoint-every", 0, "cut a checkpoint every this many simulated days (-longrun/-resume)")
	flag.StringVar(&cfg.checkpointDir, "checkpoint-dir", "", "directory for -checkpoint-every snapshots")
	flag.StringVar(&cfg.resume, "resume", "", "restore a -longrun from this checkpoint file and continue to its horizon")
	flag.BoolVar(&cfg.shardprof, "shardprof", false, "profile the E19 federation: per-shard busy/idle, barrier limiters, lookahead-bound pairs")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
		os.Exit(2)
	}

	if cfg.list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	if cfg.shardprof {
		runShardprofMode(cfg, *seed)
		return
	}
	if cfg.longrun > 0 || cfg.resume != "" {
		runLongrunMode(cfg, *seed)
		return
	}

	selected, err := cfg.selection()
	if err != nil {
		fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
		os.Exit(2)
	}

	opts := experiments.Options{Seed: *seed, Quick: cfg.quick, Shards: cfg.shards}
	if cfg.tracePath != "" {
		opts.Tracer = trace.NewRecorder(0)
	}
	mode := "full"
	if cfg.quick {
		mode = "quick"
	}
	fmt.Printf("df3bench: %d experiments, %s mode, seed %d\n", len(selected), mode, *seed)

	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	for _, e := range selected {
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now() //df3:allow(detrand) wall-clock timing of the harness is reporting-only; it never feeds the sim
		res := e.Run(opts)
		wall := time.Since(start).Seconds() //df3:allow(detrand) wall-clock timing of the harness is reporting-only; it never feeds the sim
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if err := res.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if cfg.csvDir != "" {
			if err := writeCSVs(cfg.csvDir, e.ID, res); err != nil {
				fmt.Fprintf(os.Stderr, "df3bench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s finished in %.1fs, %.1f MB allocated in %d allocs]\n",
			e.ID, wall,
			float64(after.TotalAlloc-before.TotalAlloc)/1e6,
			after.Mallocs-before.Mallocs)
	}

	if opts.Tracer != nil {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
			os.Exit(1)
		}
		err = opts.Tracer.WriteChrome(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%d spans written to %s — open in Perfetto (ui.perfetto.dev)]\n",
			len(opts.Tracer.Spans()), cfg.tracePath)
	}

	if cfg.memProfile != "" {
		f, err := os.Create(cfg.memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "df3bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeCSVs stores every table of a result as <dir>/<ID>_<n>.csv.
func writeCSVs(dir, id string, res *experiments.Result) error {
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", id, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = t.CSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
