package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchConfigValidate(t *testing.T) {
	dir := t.TempDir()
	out := func(name string) string { return filepath.Join(dir, name) }
	plain := out("plain.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		cfg     benchConfig
		wantErr string // "" = valid
	}{
		{"defaults", benchConfig{shards: 1}, ""},
		{"sharded run", benchConfig{shards: 4, run: "E2,E8"}, ""},
		{"zero shards", benchConfig{shards: 0}, "at least one shard"},
		{"negative shards", benchConfig{shards: -2}, "at least one shard"},
		{"unknown experiment", benchConfig{shards: 1, run: "E99"}, "unknown experiment"},
		{"list alone", benchConfig{list: true}, ""},
		{"list with run", benchConfig{list: true, run: "E2"}, "-list takes no other flags"},
		{"list with trace", benchConfig{list: true, tracePath: out("t.json")}, "-list takes no other flags"},
		{"trace with capable selection", benchConfig{shards: 1, run: "E18", tracePath: out("t.json")}, ""},
		{"trace over all experiments", benchConfig{shards: 1, tracePath: out("t2.json")}, ""},
		{"trace without capable selection", benchConfig{shards: 1, run: "E2", tracePath: out("t.json")}, "trace-capable"},
		{"trace into missing dir", benchConfig{shards: 1, run: "E18",
			tracePath: filepath.Join(dir, "nope", "t.json")}, "-trace"},
		{"cpuprofile into missing dir", benchConfig{shards: 1,
			cpuProfile: filepath.Join(dir, "nope", "cpu.prof")}, "-cpuprofile"},
		{"memprofile ok", benchConfig{shards: 1, memProfile: out("mem.prof")}, ""},
		{"csv creatable dir", benchConfig{shards: 1, csvDir: filepath.Join(dir, "csv")}, ""},
		{"csv path is a file", benchConfig{shards: 1, csvDir: plain}, "-csv"},
		{"shardprof", benchConfig{shards: 4, shardprof: true}, ""},
		{"shardprof quick", benchConfig{shards: 2, shardprof: true, quick: true}, ""},
		{"shardprof with run", benchConfig{shards: 4, shardprof: true, run: "E2"}, "do not apply"},
		{"shardprof with longrun", benchConfig{shards: 4, shardprof: true, longrun: 1}, "exclusive modes"},
		{"shardprof with cities", benchConfig{shards: 4, shardprof: true, cities: 10}, "sizes its own federation"},
		{"longrun", benchConfig{shards: 2, longrun: 3, cities: 4}, ""},
		{"longrun with checkpoints", benchConfig{shards: 1, longrun: 3, cities: 2,
			checkpointEvery: 1, checkpointDir: filepath.Join(dir, "ck")}, ""},
		{"longrun negative horizon", benchConfig{shards: 1, longrun: -1, cities: 2}, "-longrun"},
		{"longrun without cities", benchConfig{shards: 1, longrun: 3}, "-cities"},
		{"longrun shards exceed cities", benchConfig{shards: 4, longrun: 3, cities: 2}, "-shards 4 exceeds"},
		{"longrun with run", benchConfig{shards: 1, longrun: 3, cities: 2, run: "E2"}, "do not apply"},
		{"longrun with quick", benchConfig{shards: 1, longrun: 3, cities: 2, quick: true}, "do not apply"},
		{"longrun every without dir", benchConfig{shards: 1, longrun: 3, cities: 2,
			checkpointEvery: 1}, "-checkpoint-every requires -checkpoint-dir"},
		{"longrun dir without every", benchConfig{shards: 1, longrun: 3, cities: 2,
			checkpointDir: dir}, "-checkpoint-dir requires -checkpoint-every"},
		{"longrun negative cadence", benchConfig{shards: 1, longrun: 3, cities: 2,
			checkpointEvery: -1, checkpointDir: dir}, "-checkpoint-every"},
		{"cities without longrun", benchConfig{shards: 1, cities: 4}, "-cities requires -longrun"},
		{"checkpoint flags without longrun", benchConfig{shards: 1, checkpointDir: dir}, "require -longrun"},
		{"resume", benchConfig{shards: 1, resume: plain}, ""},
		{"resume with checkpoint dir", benchConfig{shards: 1, resume: plain,
			checkpointDir: filepath.Join(dir, "ck2")}, ""},
		{"resume with longrun", benchConfig{shards: 1, resume: plain, longrun: 3}, "exclusive"},
		{"resume with run", benchConfig{shards: 1, resume: plain, run: "E2"}, "do not apply"},
		{"resume with cities", benchConfig{shards: 1, resume: plain, cities: 2}, "sealed in the checkpoint"},
		{"resume with cadence", benchConfig{shards: 1, resume: plain,
			checkpointEvery: 1}, "sealed in the checkpoint"},
	}
	for _, c := range cases {
		err := c.cfg.validate()
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.wantErr != "" && err == nil:
			t.Errorf("%s: expected error containing %q, got nil", c.name, c.wantErr)
		case c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr):
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestBenchSelection(t *testing.T) {
	all, err := benchConfig{}.selection()
	if err != nil || len(all) < 20 {
		t.Fatalf("all selection: %d experiments, err %v", len(all), err)
	}
	sel, err := benchConfig{run: "E19, E2"}.selection()
	if err != nil || len(sel) != 2 || sel[0].ID != "E19" || sel[1].ID != "E2" {
		t.Fatalf("subset selection broken: %v err %v", sel, err)
	}
}
