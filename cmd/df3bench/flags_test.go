package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchConfigValidate(t *testing.T) {
	dir := t.TempDir()
	out := func(name string) string { return filepath.Join(dir, name) }
	plain := out("plain.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		cfg     benchConfig
		wantErr string // "" = valid
	}{
		{"defaults", benchConfig{shards: 1}, ""},
		{"sharded run", benchConfig{shards: 4, run: "E2,E8"}, ""},
		{"zero shards", benchConfig{shards: 0}, "at least one shard"},
		{"negative shards", benchConfig{shards: -2}, "at least one shard"},
		{"unknown experiment", benchConfig{shards: 1, run: "E99"}, "unknown experiment"},
		{"list alone", benchConfig{list: true}, ""},
		{"list with run", benchConfig{list: true, run: "E2"}, "-list takes no other flags"},
		{"list with trace", benchConfig{list: true, tracePath: out("t.json")}, "-list takes no other flags"},
		{"trace with capable selection", benchConfig{shards: 1, run: "E18", tracePath: out("t.json")}, ""},
		{"trace over all experiments", benchConfig{shards: 1, tracePath: out("t2.json")}, ""},
		{"trace without capable selection", benchConfig{shards: 1, run: "E2", tracePath: out("t.json")}, "trace-capable"},
		{"trace into missing dir", benchConfig{shards: 1, run: "E18",
			tracePath: filepath.Join(dir, "nope", "t.json")}, "-trace"},
		{"cpuprofile into missing dir", benchConfig{shards: 1,
			cpuProfile: filepath.Join(dir, "nope", "cpu.prof")}, "-cpuprofile"},
		{"memprofile ok", benchConfig{shards: 1, memProfile: out("mem.prof")}, ""},
		{"csv creatable dir", benchConfig{shards: 1, csvDir: filepath.Join(dir, "csv")}, ""},
		{"csv path is a file", benchConfig{shards: 1, csvDir: plain}, "-csv"},
	}
	for _, c := range cases {
		err := c.cfg.validate()
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.wantErr != "" && err == nil:
			t.Errorf("%s: expected error containing %q, got nil", c.name, c.wantErr)
		case c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr):
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestBenchSelection(t *testing.T) {
	all, err := benchConfig{}.selection()
	if err != nil || len(all) < 20 {
		t.Fatalf("all selection: %d experiments, err %v", len(all), err)
	}
	sel, err := benchConfig{run: "E19, E2"}.selection()
	if err != nil || len(sel) != 2 || sel[0].ID != "E19" || sel[1].ID != "E2" {
		t.Fatalf("subset selection broken: %v err %v", sel, err)
	}
}
