package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"df3/internal/analysis"
	"df3/internal/analysis/load"
)

// vetConfig mirrors the JSON config `go vet -vettool` hands the tool for
// each package unit (see cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// runAsVetTool handles the `go vet -vettool` protocol: the -V=full and
// -flags probes, then one invocation per package with a *.cfg argument.
// It reports whether the arguments matched the protocol.
func runAsVetTool(args []string) bool {
	if len(args) != 1 {
		return false
	}
	switch {
	case strings.HasPrefix(args[0], "-V"):
		// Build-cache tool identity probe.
		fmt.Printf("df3lint version df3-analysis-suite-v1\n")
		return true
	case args[0] == "-flags":
		// The tool exposes no pass-through flags.
		fmt.Println("[]")
		return true
	case strings.HasSuffix(args[0], ".cfg"):
		unitCheck(args[0])
		return true
	}
	return false
}

// unitCheck analyzes one package unit described by a vet config file.
func unitCheck(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading %s: %v", cfgPath, err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}
	// The driver expects a facts file for every unit, even though this
	// suite exports no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing %s: %v", cfg.VetxOutput, err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("%s: %v", cfg.ImportPath, err)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer:    imp,
		GoVersion:   cfg.GoVersion,
		FakeImportC: true,
		Error:       func(error) {},
	}
	info := load.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	findings, err := analysis.RunPackage(analysis.Unit{
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	}, analysis.Analyzers())
	if err != nil {
		fatalf("%s: %v", cfg.ImportPath, err)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Posn, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "df3lint: "+format+"\n", args...)
	os.Exit(1)
}
