package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"df3/internal/analysis"
	"df3/internal/analysis/load"
)

// vetConfig mirrors the JSON config `go vet -vettool` hands the tool for
// each package unit (see cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// runAsVetTool handles the `go vet -vettool` protocol: the -V=full and
// -flags probes, then one invocation per package with a *.cfg argument.
// It reports whether the arguments matched the protocol.
func runAsVetTool(args []string) bool {
	if len(args) != 1 {
		return false
	}
	switch {
	case strings.HasPrefix(args[0], "-V"):
		// Build-cache tool identity probe. Bumping the version invalidates
		// every cached vetx, which matters whenever the facts format or
		// the fact-producing analyses change.
		fmt.Printf("df3lint version df3-analysis-suite-v3\n")
		return true
	case args[0] == "-flags":
		// The tool exposes no pass-through flags.
		fmt.Println("[]")
		return true
	case strings.HasSuffix(args[0], ".cfg"):
		unitCheck(args[0])
		return true
	}
	return false
}

// unitCheck analyzes one package unit described by a vet config file.
//
// Facts cross package boundaries through the unitchecker protocol: each
// unit's .vetx output is the JSON-encoded accumulated facts store — its
// dependencies' stores (read from PackageVetx) merged with its own
// summaries. Because every unit re-exports everything it has seen,
// merging direct dependencies yields the transitive closure, exactly the
// view the standalone `go list -deps` walk builds. The driver schedules
// dependency units (VetxOnly) before their importers, so the store is
// complete when a unit is analyzed — the same post-order as standalone.
func unitCheck(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading %s: %v", cfgPath, err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}

	facts := analysis.NewFacts()
	deps := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		deps = append(deps, path)
	}
	sort.Strings(deps)
	for _, path := range deps {
		vetx, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			fatalf("reading facts of %s: %v", path, err)
		}
		if err := facts.Merge(vetx); err != nil {
			fatalf("facts of %s: %v", path, err)
		}
	}

	// Standard-library units contribute no df3 facts — the module boundary
	// is the taint boundary, exactly as in standalone mode, where LoadDeps
	// drops lp.Standard packages before the driver walk. (Flagging every
	// log.Fatalf caller because the logger timestamps its output would bury
	// the real findings.) The cfg's Standard map only describes the unit's
	// *dependencies*, never the unit itself, so stdlib-ness of this unit is
	// decided the way `go list` does: its directory lives under GOROOT/src.
	// Re-export the merged store without the cost of type-checking.
	if inGoroot(cfg.Dir) {
		writeVetx(cfg, facts)
		return
	}

	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("%s: %v", cfg.ImportPath, err)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer:    imp,
		GoVersion:   cfg.GoVersion,
		FakeImportC: true,
		Error:       func(error) {},
	}
	info := load.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	u := analysis.Unit{
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		Facts: facts,
	}
	if cfg.VetxOnly {
		// A dependency of the vetted patterns: summarize, export, done.
		if err := analysis.ComputeFacts(u, facts); err != nil {
			fatalf("%s: %v", cfg.ImportPath, err)
		}
		writeVetx(cfg, facts)
		return
	}

	findings, _, err := analysis.RunPackage(u, analysis.Analyzers())
	if err != nil {
		fatalf("%s: %v", cfg.ImportPath, err)
	}
	writeVetx(cfg, facts)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Posn, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// inGoroot reports whether dir is inside GOROOT/src. The binary is built
// by the same toolchain that invokes it through `go vet`, so the baked-in
// (or GOROOT-env-overridden) root is the right one to compare against.
func inGoroot(dir string) bool {
	root := runtime.GOROOT()
	if root == "" || dir == "" {
		return false
	}
	src := filepath.Join(root, "src")
	return dir == src || strings.HasPrefix(dir, src+string(filepath.Separator))
}

// writeVetx exports the accumulated facts store as the unit's vetx file.
func writeVetx(cfg *vetConfig, facts *analysis.Facts) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := facts.Encode()
	if err != nil {
		fatalf("encoding facts of %s: %v", cfg.ImportPath, err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fatalf("writing %s: %v", cfg.VetxOutput, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "df3lint: "+format+"\n", args...)
	os.Exit(1)
}
