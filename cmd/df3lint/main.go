// Command df3lint runs the df3-specific static analyzers that enforce the
// determinism, units and tracing contracts (see internal/analysis).
//
// Standalone, over Go package patterns:
//
//	df3lint ./...
//	df3lint -analyzers maporder,detrand ./internal/city
//	df3lint -json ./...
//	df3lint -write-baseline lint_baseline.json ./...
//	df3lint -baseline lint_baseline.json ./...
//
// or as a vet tool, which runs the same suite through the build cache:
//
//	go vet -vettool=$(which df3lint) ./...
//
// The suite is interprocedural: packages are analyzed in dependency
// order, and per-function fact summaries flow across package boundaries
// in both modes. The baseline mechanism makes the contracts a ratchet:
// -write-baseline records the accepted findings and every reasoned
// //df3: suppression, -baseline fails on anything not in that record, and
// CI additionally requires the committed baseline to be byte-identical to
// a fresh regen — so findings and suppressions can only be added
// deliberately, in a reviewed diff.
//
// Exit status: 0 clean, 1 findings (or baseline drift), 2 operational
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"df3/internal/analysis"
	"df3/internal/analysis/load"
)

func main() {
	// Under `go vet -vettool=` the tool is invoked with a single *.cfg
	// argument (and with -V=full / -flags probes first); detect that
	// protocol before ordinary flag parsing.
	if runAsVetTool(os.Args[1:]) {
		return
	}

	var (
		names         = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list          = flag.Bool("list", false, "list analyzers and exit")
		jsonOut       = flag.Bool("json", false, "emit findings and suppressions as JSON on stdout")
		baselinePath  = flag.String("baseline", "", "compare against a baseline file; fail only on findings or suppressions not recorded there")
		writeBaseline = flag.String("write-baseline", "", "write the canonical baseline file and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: df3lint [-analyzers a,b] [-json] [-baseline file | -write-baseline file] packages...\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "df3lint:", err)
		os.Exit(2)
	}

	rep, err := runSuite(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "df3lint:", err)
		os.Exit(2)
	}

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, rep.canonical(), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "df3lint:", err)
			os.Exit(2)
		}
		return
	}
	if *jsonOut {
		os.Stdout.Write(rep.canonical())
	}

	if *baselinePath != "" {
		ok, err := compareBaseline(rep, *baselinePath, !*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "df3lint:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	if !*jsonOut {
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// report is the canonical structured output shared by -json,
// -write-baseline and -baseline.
type report struct {
	Findings     []reportFinding     `json:"findings"`
	Suppressions []reportSuppression `json:"suppressions"`
}

type reportFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type reportSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// canonical renders the report deterministically: sorted entries,
// two-space indent, trailing newline — so a fresh regen of a clean tree
// is byte-identical to the committed baseline.
func (r *report) canonical() []byte {
	if r.Findings == nil {
		r.Findings = []reportFinding{}
	}
	if r.Suppressions == nil {
		r.Suppressions = []reportSuppression{}
	}
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return append(out, '\n')
}

// runSuite analyzes the patterns in dependency order, threading one facts
// store through every module package, and returns the merged report with
// module-relative paths.
func runSuite(patterns []string, analyzers []*analysis.Analyzer) (*report, error) {
	loader := load.NewLoader("")
	pkgs, err := loader.LoadDeps(patterns...)
	if err != nil {
		return nil, err
	}
	facts := analysis.NewFacts()
	rep := &report{}
	for _, p := range pkgs {
		u := analysis.Unit{
			Fset:  loader.Fset(),
			Files: p.Files,
			Pkg:   p.Types,
			Info:  p.Info,
			Facts: facts,
		}
		if p.DepOnly {
			// Dependency of the named patterns: its facts must exist for
			// the packages above it, but it is not itself under review.
			if err := analysis.ComputeFacts(u, facts); err != nil {
				return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
			}
			continue
		}
		findings, sups, err := analysis.RunPackage(u, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, reportFinding{
				File:     relPath(f.Posn.Filename),
				Line:     f.Posn.Line,
				Col:      f.Posn.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		for _, s := range sups {
			rep.Suppressions = append(rep.Suppressions, reportSuppression{
				File:     relPath(s.File),
				Line:     s.Line,
				Analyzer: s.Analyzer,
				Reason:   s.Reason,
			})
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(rep.Suppressions, func(i, j int) bool {
		a, b := rep.Suppressions[i], rep.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return rep, nil
}

// relPath renders a path relative to the working directory (the module
// root in CI) so baselines are stable across checkouts.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return filepath.ToSlash(rel)
}

// compareBaseline fails on findings or suppressions absent from the
// baseline. Entries are matched without line numbers, so pure code motion
// does not fail the compare (the CI byte-identity check still forces a
// regen); a new finding, or a suppression with a new file/analyzer/reason
// combination, does.
func compareBaseline(rep *report, path string, print bool) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("reading baseline: %v", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	knownF := map[string]bool{}
	for _, f := range base.Findings {
		knownF[f.File+"\x00"+f.Analyzer+"\x00"+f.Message] = true
	}
	knownS := map[string]bool{}
	for _, s := range base.Suppressions {
		knownS[s.File+"\x00"+s.Analyzer+"\x00"+s.Reason] = true
	}
	ok := true
	for _, f := range rep.Findings {
		if !knownF[f.File+"\x00"+f.Analyzer+"\x00"+f.Message] {
			ok = false
			if print {
				fmt.Printf("%s:%d:%d: new finding not in baseline: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
			}
		}
	}
	for _, s := range rep.Suppressions {
		if !knownS[s.File+"\x00"+s.Analyzer+"\x00"+s.Reason] {
			ok = false
			if print {
				fmt.Printf("%s:%d: new suppression not in baseline: //df3:allow(%s) %s\n", s.File, s.Line, s.Analyzer, s.Reason)
			}
		}
	}
	if !ok && print {
		fmt.Printf("df3lint: baseline %s is stale: fix the findings, or regenerate with -write-baseline and justify the diff in review\n", path)
	}
	return ok, nil
}

// selectAnalyzers resolves the -analyzers flag.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.Analyzers(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
