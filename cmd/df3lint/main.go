// Command df3lint runs the df3-specific static analyzers that enforce the
// determinism, units and tracing contracts (see internal/analysis).
//
// Standalone, over Go package patterns:
//
//	df3lint ./...
//	df3lint -analyzers maporder,detrand ./internal/city
//
// or as a vet tool, which runs the same suite through the build cache:
//
//	go vet -vettool=$(which df3lint) ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"df3/internal/analysis"
	"df3/internal/analysis/load"
)

func main() {
	// Under `go vet -vettool=` the tool is invoked with a single *.cfg
	// argument (and with -V=full / -flags probes first); detect that
	// protocol before ordinary flag parsing.
	if runAsVetTool(os.Args[1:]) {
		return
	}

	var (
		names = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: df3lint [-analyzers a,b] packages...\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "df3lint:", err)
		os.Exit(2)
	}

	loader := load.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "df3lint:", err)
		os.Exit(2)
	}

	found := false
	for _, p := range pkgs {
		findings, err := analysis.RunPackage(analysis.Unit{
			Fset:  loader.Fset(),
			Files: p.Files,
			Pkg:   p.Types,
			Info:  p.Info,
		}, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "df3lint: %s: %v\n", p.ImportPath, err)
			os.Exit(2)
		}
		for _, f := range findings {
			found = true
			fmt.Printf("%s: %s [%s]\n", f.Posn, f.Message, f.Analyzer)
		}
	}
	if found {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -analyzers flag.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.Analyzers(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
