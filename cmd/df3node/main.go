// Command df3node hosts one partition of a df3 federation as a worker
// process. It listens on TCP or a unix socket, accepts one coordinator
// connection, and speaks the wire protocol: the coordinator ships the
// sealed build recipe and the contiguous city block this node owns, the
// node rebuilds the complete federation from the recipe (so every node
// provably runs the same scenario) restricted to its partition, and then
// executes window after window under the coordinator's conservative
// barrier until a clean Bye.
//
//	df3node -addr 127.0.0.1:9401
//	df3node -addr unix:/tmp/df3-0.sock
//
// The first stdout line is "df3node listening on <addr>" with the bound
// address (useful with -addr :0); harnesses wait for it, or for the port
// itself, before pointing df3coord at the worker. A worker serves one
// run and exits: 0 after a clean shutdown, 1 on any transport, protocol
// or scenario failure — a dead coordinator is detected by the session
// deadline, so an orphaned worker does not linger.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"

	"df3/internal/cliutil"
	"df3/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", ":9401", "listen address (host:port or unix:/path)")
		timeout = flag.Duration("timeout", wire.DefaultTimeout, "wall bound on each coordinator request")
		traceN  = flag.Int("trace", 0, "span-trace ring capacity; enables the trace chunk frames (0 disables)")
	)
	flag.Parse()

	la, err := cliutil.CheckListenAddr(*addr)
	if err != nil {
		usageErr("-addr: %v", err)
	}
	if *timeout <= 0 {
		usageErr("-timeout %v: need a positive wall bound", *timeout)
	}
	if *traceN < 0 {
		usageErr("-trace %d must be non-negative", *traceN)
	}

	ln, err := net.Listen(la.Network, la.Addr)
	if err != nil {
		fatal("listen: %v", err)
	}
	if la.Network == "unix" {
		defer os.Remove(la.Addr)
	}
	fmt.Printf("df3node listening on %s\n", ln.Addr())

	// One coordinator per run, but connections that die before a valid
	// hello — port scanners, harness readiness probes — don't count:
	// keep listening until a real session runs.
	for {
		conn, err := ln.Accept()
		if err != nil {
			fatal("accept: %v", err)
		}
		err = wire.Serve(conn, wire.ServeOptions{
			Timeout:       *timeout,
			TraceCapacity: *traceN,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "df3node: "+format+"\n", args...)
			},
		})
		conn.Close()
		var hs *wire.HandshakeError
		switch {
		case err == nil:
			ln.Close()
			fmt.Println("df3node: clean shutdown")
			return
		case errors.As(err, &hs):
			fmt.Fprintf(os.Stderr, "df3node: ignoring pre-handshake connection: %v\n", err)
		default:
			ln.Close()
			fatal("session: %v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "df3node: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr is flag validation's exit: 2, like every df3 CLI.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "df3node: "+format+"\n", args...)
	os.Exit(2)
}
