// Command df3trace summarises traces written by df3sim. The default mode
// reads per-event records (df3sim -trace) and reports per-kind counts,
// rates and value distributions. The spans mode reads causal spans
// (df3sim -spans) and reports the per-stage latency breakdown, the
// exclusive self-time decomposition and the critical path of the slowest
// request; -chrome additionally converts the spans to Chrome trace-event
// JSON for Perfetto.
//
//	df3sim -days 2 -trace run.csv
//	df3trace run.csv
//
//	df3sim -days 2 -spans run.jsonl
//	df3trace spans run.jsonl
//	df3trace spans -chrome run.json run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"df3/internal/report"
	"df3/internal/trace"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "spans" {
		spansMode(os.Args[2:])
		return
	}
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: df3trace <trace.csv|trace.jsonl>")
		fmt.Fprintln(os.Stderr, "       df3trace spans [-chrome out.json] [-paths n] <spans.jsonl>")
		os.Exit(2)
	}
	eventsMode(os.Args[1])
}

// eventsMode is the original per-event-kind summary.
func eventsMode(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()

	var events []trace.Event
	if strings.HasSuffix(path, ".jsonl") {
		events, err = trace.ReadJSONL(f)
	} else {
		events, err = trace.ReadCSV(f)
	}
	if err != nil {
		fatal("%v", err)
	}

	t := report.NewTable(fmt.Sprintf("%s: %d events", path, len(events)),
		"kind", "count", "rate /s", "mean", "median", "p99", "max")
	for _, s := range trace.Summarize(events) {
		t.Row(s.Kind, s.Count, s.Rate(), s.Mean, s.Median, s.P99, s.Max)
	}
	if err := t.Write(os.Stdout); err != nil {
		fatal("%v", err)
	}
}

// spansMode reads a span JSONL file and prints the latency decomposition.
func spansMode(args []string) {
	fs := flag.NewFlagSet("df3trace spans", flag.ExitOnError)
	chromePath := fs.String("chrome", "", "also write the spans as Chrome trace-event JSON to this file")
	nPaths := fs.Int("paths", 1, "print the critical path of the n slowest root spans")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: df3trace spans [-chrome out.json] [-paths n] <spans.jsonl>")
		os.Exit(2)
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	spans, err := trace.ReadSpansJSONL(f)
	if err != nil {
		fatal("%v", err)
	}
	if len(spans) == 0 {
		fatal("%s holds no spans", path)
	}

	stages := report.NewTable(
		fmt.Sprintf("%s: %d spans, per-stage latency (seconds)", path, len(spans)),
		"stage", "count", "total", "mean", "p50", "p99", "max")
	for _, s := range trace.SummarizeStages(spans) {
		stages.Row(s.Stage, s.Count, s.Total, s.Mean, s.P50, s.P99, s.Max)
	}
	if err := stages.Write(os.Stdout); err != nil {
		fatal("%v", err)
	}

	self := report.NewTable("exclusive self time by stage (seconds)", "stage", "self")
	for _, s := range trace.SelfTimes(spans) {
		self.Row(s.Stage, s.Self)
	}
	if err := self.Write(os.Stdout); err != nil {
		fatal("%v", err)
	}

	roots := trace.Roots(spans)
	for i, root := range roots {
		if i >= *nPaths {
			break
		}
		t := report.NewTable(
			fmt.Sprintf("critical path of root #%d (%s %q, %.6fs)",
				i+1, root.Stage, root.Detail, root.Duration()),
			"stage", "from", "to", "duration")
		for _, seg := range trace.CriticalPath(spans, root.ID) {
			t.Row(seg.Stage, seg.From, seg.To, seg.To-seg.From)
		}
		if err := t.Write(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}

	if *chromePath != "" {
		out, err := os.Create(*chromePath)
		if err != nil {
			fatal("chrome: %v", err)
		}
		err = trace.WriteChromeSpans(out, spans, nil)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("chrome: %v", err)
		}
		fmt.Printf("chrome trace written to %s — open in Perfetto (ui.perfetto.dev)\n", *chromePath)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "df3trace: "+format+"\n", args...)
	os.Exit(1)
}
