// Command df3trace summarises a request trace written by df3sim -trace (or
// any trace.Recorder CSV/JSONL): per-event-kind counts, rates and value
// distributions.
//
//	df3sim -days 2 -trace run.csv
//	df3trace run.csv
package main

import (
	"fmt"
	"os"
	"strings"

	"df3/internal/report"
	"df3/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: df3trace <trace.csv|trace.jsonl>")
		os.Exit(2)
	}
	path := os.Args[1]
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "df3trace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	var events []trace.Event
	if strings.HasSuffix(path, ".jsonl") {
		events, err = trace.ReadJSONL(f)
	} else {
		events, err = trace.ReadCSV(f)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "df3trace: %v\n", err)
		os.Exit(1)
	}

	t := report.NewTable(fmt.Sprintf("%s: %d events", path, len(events)),
		"kind", "count", "rate /s", "mean", "median", "p99", "max")
	for _, s := range trace.Summarize(events) {
		t.Row(s.Kind, s.Count, s.Rate(), s.Mean, s.Median, s.P99, s.Max)
	}
	if err := t.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "df3trace: %v\n", err)
		os.Exit(1)
	}
}
