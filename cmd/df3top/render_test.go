package main

import (
	"strings"
	"testing"
	"time"

	"df3/internal/metrics"
)

// canned is a trimmed /metrics exposition of a live df3d with the
// flight recorder, checkpointing and the shard profiler all on.
const canned = `# TYPE df3_paced_lag_seconds gauge
df3_paced_lag_seconds 0.012
# TYPE df3_paced_slices_total counter
df3_paced_slices_total 400
df3_paced_last_slice_sim_time_s 8123.5
# TYPE df3_ingest_requests_total counter
df3_ingest_requests_total{class="edge",outcome="served"} 1200
df3_ingest_requests_total{class="edge",outcome="rejected"} 3
df3_ingest_requests_total{class="edge",outcome="shed"} 7
df3_ingest_requests_total{class="edge",outcome="timeout"} 0
df3_ingest_requests_total{class="dcc",outcome="done"} 88
df3_ingest_requests_total{class="dcc",outcome="lost"} 1
df3_ingest_requests_total{class="dcc",outcome="shed"} 0
df3_ingest_requests_total{class="dcc",outcome="timeout"} 0
df3_ingest_wall_seconds{class="edge",quantile="0.99"} 0.25
df3_ingest_wall_seconds_count{class="edge"} 1203
df3_ingest_inflight{class="edge"} 14
df3_ingest_inflight{class="dcc"} 2
df3_ingest_queue_depth 3
df3_recovery_active 0
df3_recovery_replayed_records_total 512
df3_recovery_replay_records_per_second 0
df3_recovery_duration_seconds 1.25
df3_checkpoint_writes_total 3
df3_checkpoint_errors_total 0
df3_checkpoint_age_sim_seconds 512
df3_wal_written_bytes 2097152
df3_wal_durable_bytes 2097152
df3_wal_lag_bytes 0
df3_flight_sources 3
df3_flight_spans_kept_total{src="city-0"} 500
df3_flight_spans_kept_total{src="ingest"} 534
df3_flight_spans_sampled_out_total{src="ingest"} 4021
df3_flight_spans_evicted_total{src="city-0"} 100
df3_go_goroutines 24
df3_go_heap_objects_bytes 12582912
df3_go_gc_cycles_total 12
df3_go_gc_pause_seconds{quantile="0.99"} 0.0008
df3_shard_busy_seconds{shard="0"} 1.5
df3_shard_busy_seconds{shard="1"} 1.2
df3_shard_idle_seconds{shard="0"} 0.5
df3_shard_idle_seconds{shard="1"} 0.8
`

func parse(t *testing.T, text string) map[string]float64 {
	t.Helper()
	m, err := metrics.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRenderFullFrame(t *testing.T) {
	cur := parse(t, canned)
	// prev differs only in the rate-bearing counters: 2s apart, 100 more
	// edge served and 10 more slices now.
	prevText := strings.NewReplacer(
		`outcome="served"} 1200`, `outcome="served"} 1100`,
		"df3_paced_slices_total 400", "df3_paced_slices_total 390",
	).Replace(canned)
	prev := parse(t, prevText)

	out := render("http://h:1", prev, cur, healthInfo{OK: true, State: "serving", SimTime: 8123.5}, 2*time.Second)
	for _, want := range []string{
		"state serving",
		"sim 8123.5 s",
		"lag 0.012s",
		"slices 400 (5.0/s)",
		"served 1200 (50.0/s)",
		"rejected 3",
		"wall p99 0.250s",
		"done 88",
		"inflight 16",
		"queue 3",
		"replayed 512 records",
		"writes 3",
		"age 512 sim-s",
		"written 2.00 MiB",
		"lag 0 B",
		"kept 1034",
		"sampled out 4021",
		"sources 3",
		"goroutines 24",
		"heap 12.00 MiB",
		"gc pause p99 0.80ms",
		"0: busy 1.50s idle 0.50s (75%)",
		"1: busy 1.20s idle 0.80s (60%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n%s", want, out)
		}
	}
}

func TestRenderFirstScrapeHasZeroRates(t *testing.T) {
	cur := parse(t, canned)
	out := render("u", nil, cur, healthInfo{State: "serving"}, time.Second)
	if !strings.Contains(out, "served 1200 (0.0/s)") {
		t.Errorf("first frame should render zero rates\n%s", out)
	}
}

func TestRenderScrapeError(t *testing.T) {
	out := render("u", nil, nil, healthInfo{Err: "connection refused"}, time.Second)
	if !strings.Contains(out, "state unknown") || !strings.Contains(out, "connection refused") {
		t.Errorf("error frame wrong:\n%s", out)
	}
	if strings.Contains(out, "paced") {
		t.Errorf("error frame should carry no sections:\n%s", out)
	}
}

func TestRenderOmitsAbsentSections(t *testing.T) {
	// A step-mode daemon: no paced driver, no WAL, no flight recorder,
	// profiler series present but all zero (profiling off).
	cur := parse(t, `df3_go_goroutines 8
df3_shard_busy_seconds{shard="0"} 0
df3_shard_idle_seconds{shard="0"} 0
`)
	out := render("u", nil, cur, healthInfo{State: "serving"}, time.Second)
	for _, not := range []string{"paced", "wal", "flight", "ingest", "shards"} {
		if strings.Contains(out, not) {
			t.Errorf("step frame should omit %q:\n%s", not, out)
		}
	}
	if !strings.Contains(out, "goroutines 8") {
		t.Errorf("runtime section missing:\n%s", out)
	}
}

func TestRenderCounterResetClampsRate(t *testing.T) {
	cur := parse(t, "df3_paced_lag_seconds 0\ndf3_paced_slices_total 5\n")
	prev := parse(t, "df3_paced_lag_seconds 0\ndf3_paced_slices_total 400\n")
	out := render("u", prev, cur, healthInfo{State: "serving"}, time.Second)
	if !strings.Contains(out, "slices 5 (0.0/s)") {
		t.Errorf("restart should clamp the rate at zero:\n%s", out)
	}
}
