package main

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// healthInfo is the decoded /healthz body, plus any scrape error. The
// zero value renders as "unknown" — a daemon that never answered.
type healthInfo struct {
	OK      bool    `json:"ok"`
	State   string  `json:"state"`
	SimTime float64 `json:"sim_time_s"`
	// Err is a transport or parse failure; the dashboard shows it as a
	// banner and keeps polling.
	Err string `json:"-"`
}

// metricVal returns one series by its exact exposition id (name plus
// rendered label set), 0 when absent.
func metricVal(m map[string]float64, id string) float64 { return m[id] }

// metricSum folds every series of one family: the bare name and any
// labeled variant. Histogram _sum/_count families are distinct names, so
// they never alias their quantile series.
func metricSum(m map[string]float64, name string) float64 {
	if v, ok := m[name]; ok {
		return v
	}
	var total float64
	prefix := name + "{"
	//df3:unordered-ok display-only rollup; FP association error is far below render precision
	for id, v := range m {
		if strings.HasPrefix(id, prefix) {
			total += v
		}
	}
	return total
}

// metricRate is the per-second family delta between two scrapes, clamped
// at zero (a restarted daemon resets its counters).
func metricRate(prev, cur map[string]float64, name string, interval time.Duration) float64 {
	if prev == nil || interval <= 0 {
		return 0
	}
	d := metricSum(cur, name) - metricSum(prev, name)
	if d < 0 {
		return 0
	}
	return d / interval.Seconds()
}

// has reports whether any series of the family is present — the gate for
// optional dashboard sections (WAL, flight, shards).
func has(m map[string]float64, name string) bool {
	if _, ok := m[name]; ok {
		return true
	}
	prefix := name + "{"
	//df3:unordered-ok pure existence test; any matching series answers the same
	for id := range m {
		if strings.HasPrefix(id, prefix) {
			return true
		}
	}
	return false
}

// fmtBytes renders a byte count with a binary-ish human unit.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// ingestLine renders one request class: terminal outcome counts with a
// completion rate, plus the wall-latency p99 when observed.
func ingestLine(prev, cur map[string]float64, interval time.Duration, class, done string, outcomes []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-7s", class)
	for _, o := range outcomes {
		id := fmt.Sprintf(`df3_ingest_requests_total{class=%q,outcome=%q}`, class, o)
		fmt.Fprintf(&b, " %s %.0f", o, metricVal(cur, id))
		if o == done {
			doneID := id
			r := 0.0
			if prev != nil {
				if d := metricVal(cur, doneID) - metricVal(prev, doneID); d > 0 {
					r = d / interval.Seconds()
				}
			}
			fmt.Fprintf(&b, " (%.1f/s)", r)
		}
	}
	p99 := fmt.Sprintf(`df3_ingest_wall_seconds{class=%q,quantile="0.99"}`, class)
	if v, ok := cur[p99]; ok && metricVal(cur, fmt.Sprintf(`df3_ingest_wall_seconds_count{class=%q}`, class)) > 0 {
		fmt.Fprintf(&b, "   wall p99 %.3fs", v)
	}
	return b.String()
}

// render composes one dashboard frame from two consecutive scrapes. It
// is a pure function of its inputs, which is what makes the dashboard
// unit-testable against canned exposition text.
func render(url string, prev, cur map[string]float64, health healthInfo, interval time.Duration) string {
	var b strings.Builder
	state := health.State
	if state == "" {
		state = "unknown"
	}
	fmt.Fprintf(&b, "df3top  %s   state %s", url, state)
	if health.SimTime > 0 {
		fmt.Fprintf(&b, "   sim %.1f s", health.SimTime)
	}
	b.WriteByte('\n')
	if health.Err != "" {
		fmt.Fprintf(&b, "!! scrape error: %s\n", health.Err)
	}
	if cur == nil {
		return b.String()
	}
	b.WriteByte('\n')

	if has(cur, "df3_paced_slices_total") {
		fmt.Fprintf(&b, "paced     lag %.3fs   slices %.0f (%.1f/s)   last slice %.1f sim-s\n",
			metricVal(cur, "df3_paced_lag_seconds"),
			metricVal(cur, "df3_paced_slices_total"),
			metricRate(prev, cur, "df3_paced_slices_total", interval),
			metricVal(cur, "df3_paced_last_slice_sim_time_s"))
	}
	if has(cur, "df3_ingest_requests_total") {
		fmt.Fprintf(&b, "ingest    inflight %.0f   queue %.0f\n",
			metricSum(cur, "df3_ingest_inflight"),
			metricVal(cur, "df3_ingest_queue_depth"))
		b.WriteString(ingestLine(prev, cur, interval, "edge", "served",
			[]string{"served", "rejected", "shed", "timeout"}) + "\n")
		b.WriteString(ingestLine(prev, cur, interval, "dcc", "done",
			[]string{"done", "lost", "shed", "timeout"}) + "\n")
	}
	if has(cur, "df3_recovery_active") {
		fmt.Fprintf(&b, "recovery  active %.0f   replayed %.0f records (%.0f rec/s)   duration %.2fs\n",
			metricVal(cur, "df3_recovery_active"),
			metricVal(cur, "df3_recovery_replayed_records_total"),
			metricVal(cur, "df3_recovery_replay_records_per_second"),
			metricVal(cur, "df3_recovery_duration_seconds"))
	}
	if has(cur, "df3_checkpoint_writes_total") {
		fmt.Fprintf(&b, "ckpt      writes %.0f   errors %.0f",
			metricVal(cur, "df3_checkpoint_writes_total"),
			metricVal(cur, "df3_checkpoint_errors_total"))
		if has(cur, "df3_checkpoint_age_sim_seconds") {
			fmt.Fprintf(&b, "   age %.0f sim-s", metricVal(cur, "df3_checkpoint_age_sim_seconds"))
		}
		b.WriteByte('\n')
	}
	if has(cur, "df3_wal_written_bytes") {
		fmt.Fprintf(&b, "wal       written %s   durable %s   lag %s\n",
			fmtBytes(metricVal(cur, "df3_wal_written_bytes")),
			fmtBytes(metricVal(cur, "df3_wal_durable_bytes")),
			fmtBytes(metricVal(cur, "df3_wal_lag_bytes")))
	}
	if has(cur, "df3_flight_spans_kept_total") {
		fmt.Fprintf(&b, "flight    kept %.0f (%.1f/s)   sampled out %.0f   evicted %.0f   sources %.0f\n",
			metricSum(cur, "df3_flight_spans_kept_total"),
			metricRate(prev, cur, "df3_flight_spans_kept_total", interval),
			metricSum(cur, "df3_flight_spans_sampled_out_total"),
			metricSum(cur, "df3_flight_spans_evicted_total"),
			metricVal(cur, "df3_flight_sources"))
	}
	if has(cur, "df3_go_goroutines") {
		fmt.Fprintf(&b, "runtime   goroutines %.0f   heap %s   gc cycles %.0f   gc pause p99 %.2fms\n",
			metricVal(cur, "df3_go_goroutines"),
			fmtBytes(metricVal(cur, "df3_go_heap_objects_bytes")),
			metricVal(cur, "df3_go_gc_cycles_total"),
			1e3*metricVal(cur, `df3_go_gc_pause_seconds{quantile="0.99"}`))
	}
	if shards := shardLines(cur); shards != "" {
		b.WriteString(shards)
	}
	return b.String()
}

// shardLines renders per-shard busy/idle utilization when the kernel
// profiler is on (all-zero series mean profiling is off — omit them).
func shardLines(cur map[string]float64) string {
	type sh struct {
		id         int
		busy, idle float64
	}
	var shards []sh
	//df3:unordered-ok collected entries are fully sorted by shard id before use
	for id, v := range cur {
		var s int
		if n, _ := fmt.Sscanf(id, `df3_shard_busy_seconds{shard="%d"}`, &s); n == 1 {
			idle := cur[fmt.Sprintf(`df3_shard_idle_seconds{shard="%d"}`, s)]
			shards = append(shards, sh{id: s, busy: v, idle: idle})
		}
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })
	var total float64
	for _, s := range shards {
		total += s.busy + s.idle
	}
	if len(shards) == 0 || total == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("shards   ")
	for _, s := range shards {
		util := 0.0
		if w := s.busy + s.idle; w > 0 {
			util = 100 * s.busy / w
		}
		fmt.Fprintf(&b, " %d: busy %.2fs idle %.2fs (%.0f%%)", s.id, s.busy, s.idle, util)
	}
	b.WriteByte('\n')
	return b.String()
}
