// Command df3top is a terminal dashboard for a running df3d: it polls
// /metrics and /healthz and renders a live SLO / ingest / recovery view,
// with rates computed from scrape deltas.
//
//	df3top -url http://localhost:8080 -interval 2s
//	df3top -once   # one snapshot, no screen clearing — for scripts
//
// The dashboard is read-only and resilient: a scrape failure (daemon
// restarting, recovery in progress behind a dead listener) renders as an
// error banner and polling continues.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"df3/internal/metrics"
)

// clearScreen is the ANSI home+erase prefix for each live frame.
const clearScreen = "\x1b[H\x1b[2J"

func main() {
	url := flag.String("url", "http://localhost:8080", "df3d base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll period (also the rate window)")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "df3top: -url must not be empty")
		os.Exit(2)
	}
	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "df3top: -interval must be positive")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *interval}
	var prev map[string]float64
	for {
		cur, health := scrape(client, *url)
		frame := render(*url, prev, cur, health, *interval)
		if *once {
			fmt.Print(frame)
			if health.Err != "" {
				os.Exit(1)
			}
			return
		}
		fmt.Print(clearScreen + frame)
		prev = cur
		time.Sleep(*interval)
	}
}

// scrape polls both surfaces. A failed metrics scrape yields a nil map
// and an error banner in healthInfo; /healthz is decoded even on 503 —
// a recovering daemon answers 503 with a JSON state body.
func scrape(client *http.Client, base string) (map[string]float64, healthInfo) {
	var h healthInfo
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		h.Err = err.Error()
	} else {
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			h.Err = "healthz: " + err.Error()
		}
	}
	mresp, err := client.Get(base + "/metrics")
	if err != nil {
		if h.Err == "" {
			h.Err = err.Error()
		}
		return nil, h
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		if h.Err == "" {
			h.Err = fmt.Sprintf("metrics: HTTP %d", mresp.StatusCode)
		}
		return nil, h
	}
	m, err := metrics.ParsePrometheus(mresp.Body)
	if err != nil {
		if h.Err == "" {
			h.Err = err.Error()
		}
		return nil, h
	}
	return m, h
}
