package main

import (
	"fmt"
	"time"

	"df3/internal/cliutil"
)

// daemonConfig is the parsed flag set, separated from main so the
// validation rules are unit-testable.
type daemonConfig struct {
	addr                      string
	buildings, rooms, boilers int
	seed                      uint64
	mtbf                      float64

	// Live mode.
	live           bool
	speed          float64
	maxSlice       float64
	cities, shards int
	arrivalLog     string
	ingestTimeout  time.Duration
	maxEdge        int
	maxDCC         int
	maxQueue       int

	// Crash safety (live mode).
	checkpointDir   string
	checkpointEvery float64
	walFsync        bool

	// Observability.
	pprofEnabled bool
	flight       int
	traceSample  int
	profile      bool

	// Offline replay mode.
	replay string
}

// defaultCheckpointEvery is the -checkpoint-every default, in simulated
// seconds: one checkpoint per simulated hour.
const defaultCheckpointEvery = 3600.0

// validate rejects invalid values and mutually exclusive combinations
// before the scenario is built. Live-only knobs on a step-driven daemon
// are configuration errors, not silent no-ops.
func (c daemonConfig) validate() error {
	la, err := cliutil.CheckListenAddr(c.addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	if la.Network != "tcp" {
		return fmt.Errorf("-addr %q: df3d serves HTTP over TCP (df3node accepts unix sockets)", c.addr)
	}
	if c.buildings < 1 || c.rooms < 1 {
		return fmt.Errorf("need at least 1 building and 1 room (have %d×%d)", c.buildings, c.rooms)
	}
	if c.boilers < 0 || c.boilers > c.buildings {
		return fmt.Errorf("-boilers %d out of range 0..%d", c.boilers, c.buildings)
	}
	if c.mtbf < 0 {
		return fmt.Errorf("-mtbf %v must be non-negative", c.mtbf)
	}
	if c.flight < 0 {
		return fmt.Errorf("-flight %d must be non-negative (0 disables the flight recorder)", c.flight)
	}
	if c.traceSample < 1 {
		return fmt.Errorf("-trace-sample %d: need a keep-1-in-N rate of at least 1", c.traceSample)
	}
	if c.traceSample != 1 && c.flight == 0 {
		return fmt.Errorf("-trace-sample tunes the flight recorder; it requires -flight")
	}
	if c.replay != "" {
		// Offline replay: rebuild the federation and re-execute a recorded
		// arrival log — no server, no pacing, no recording.
		switch {
		case c.live:
			return fmt.Errorf("-replay is an offline mode, drop -live")
		case c.arrivalLog != "":
			return fmt.Errorf("-replay reads an arrival log; -arrival-log records one — they are exclusive")
		case c.checkpointDir != "" || c.walFsync:
			return fmt.Errorf("checkpoint flags (-checkpoint-dir, -wal-fsync) require -live")
		case c.speed != 1:
			return fmt.Errorf("-speed requires -live (replay is batch, not paced)")
		case c.maxEdge != 0 || c.maxDCC != 0 || c.maxQueue != 0:
			return fmt.Errorf("admission flags (-max-inflight-edge, -max-inflight-dcc, -max-queue) require -live")
		case c.pprofEnabled || c.flight != 0 || c.profile:
			return fmt.Errorf("observability flags (-pprof, -flight, -profile) serve live traffic; drop them for -replay")
		}
		if err := c.validateFederation(); err != nil {
			return err
		}
		return nil
	}
	if !c.live {
		// The step-driven daemon is a single deterministic city; every
		// live-plane knob is meaningless without -live.
		switch {
		case c.speed != 1:
			return fmt.Errorf("-speed requires -live")
		case c.cities != 1:
			return fmt.Errorf("-cities requires -live (the step daemon serves one city)")
		case c.shards != 1:
			return fmt.Errorf("-shards requires -live")
		case c.arrivalLog != "":
			return fmt.Errorf("-arrival-log requires -live")
		case c.maxEdge != 0 || c.maxDCC != 0 || c.maxQueue != 0:
			return fmt.Errorf("admission flags (-max-inflight-edge, -max-inflight-dcc, -max-queue) require -live")
		case c.checkpointDir != "" || c.walFsync:
			return fmt.Errorf("checkpoint flags (-checkpoint-dir, -wal-fsync) require -live")
		case c.flight != 0:
			return fmt.Errorf("-flight requires -live (the flight recorder rides the live ingest plane)")
		case c.profile:
			return fmt.Errorf("-profile requires -live (the shard profiler needs the sharded kernel)")
		}
		return nil
	}
	if c.speed <= 0 {
		return fmt.Errorf("-speed %v: need a positive time-scale", c.speed)
	}
	if c.maxSlice <= 0 {
		return fmt.Errorf("-max-slice %v: need a positive slice bound", c.maxSlice)
	}
	if err := c.validateFederation(); err != nil {
		return err
	}
	if c.ingestTimeout <= 0 {
		return fmt.Errorf("-ingest-timeout %v: need a positive wall bound", c.ingestTimeout)
	}
	if c.maxEdge < 0 || c.maxDCC < 0 || c.maxQueue < 0 {
		return fmt.Errorf("admission limits must be non-negative (edge %d, dcc %d, queue %d)",
			c.maxEdge, c.maxDCC, c.maxQueue)
	}
	if c.arrivalLog != "" {
		if err := cliutil.CheckWritableFile(c.arrivalLog); err != nil {
			return fmt.Errorf("-arrival-log: %w", err)
		}
	}
	if c.checkpointDir == "" && c.checkpointEvery != defaultCheckpointEvery && c.checkpointEvery != 0 {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-dir")
	}
	if c.checkpointDir != "" {
		// The WAL is what recovery replays; checkpoints only bound how much
		// of it must be re-executed. One without the other cannot recover.
		if c.arrivalLog == "" {
			return fmt.Errorf("-checkpoint-dir requires -arrival-log (the arrival log is the WAL recovery replays)")
		}
		if c.checkpointEvery <= 0 {
			return fmt.Errorf("-checkpoint-every %v: need a positive simulated period", c.checkpointEvery)
		}
	}
	if c.walFsync && c.arrivalLog == "" {
		return fmt.Errorf("-wal-fsync requires -arrival-log")
	}
	return nil
}

// validateFederation checks the shape flags shared by live and replay
// modes (both build a federation).
func (c daemonConfig) validateFederation() error {
	if c.cities < 1 {
		return fmt.Errorf("-cities %d: need at least one city", c.cities)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one shard", c.shards)
	}
	if c.shards > c.cities {
		return fmt.Errorf("-shards %d exceeds -cities %d: a city is the unit of parallelism", c.shards, c.cities)
	}
	if c.mtbf > 0 && c.cities > 1 {
		return fmt.Errorf("-mtbf fault injection is single-city only for now")
	}
	return nil
}
