package main

import (
	"fmt"
	"time"

	"df3/internal/cliutil"
)

// daemonConfig is the parsed flag set, separated from main so the
// validation rules are unit-testable.
type daemonConfig struct {
	addr                      string
	buildings, rooms, boilers int
	seed                      uint64
	mtbf                      float64

	// Live mode.
	live           bool
	speed          float64
	maxSlice       float64
	cities, shards int
	arrivalLog     string
	ingestTimeout  time.Duration
	maxEdge        int
	maxDCC         int
	maxQueue       int
}

// validate rejects invalid values and mutually exclusive combinations
// before the scenario is built. Live-only knobs on a step-driven daemon
// are configuration errors, not silent no-ops.
func (c daemonConfig) validate() error {
	if c.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if c.buildings < 1 || c.rooms < 1 {
		return fmt.Errorf("need at least 1 building and 1 room (have %d×%d)", c.buildings, c.rooms)
	}
	if c.boilers < 0 || c.boilers > c.buildings {
		return fmt.Errorf("-boilers %d out of range 0..%d", c.boilers, c.buildings)
	}
	if c.mtbf < 0 {
		return fmt.Errorf("-mtbf %v must be non-negative", c.mtbf)
	}
	if !c.live {
		// The step-driven daemon is a single deterministic city; every
		// live-plane knob is meaningless without -live.
		switch {
		case c.speed != 1:
			return fmt.Errorf("-speed requires -live")
		case c.cities != 1:
			return fmt.Errorf("-cities requires -live (the step daemon serves one city)")
		case c.shards != 1:
			return fmt.Errorf("-shards requires -live")
		case c.arrivalLog != "":
			return fmt.Errorf("-arrival-log requires -live")
		case c.maxEdge != 0 || c.maxDCC != 0 || c.maxQueue != 0:
			return fmt.Errorf("admission flags (-max-inflight-edge, -max-inflight-dcc, -max-queue) require -live")
		}
		return nil
	}
	if c.speed <= 0 {
		return fmt.Errorf("-speed %v: need a positive time-scale", c.speed)
	}
	if c.maxSlice <= 0 {
		return fmt.Errorf("-max-slice %v: need a positive slice bound", c.maxSlice)
	}
	if c.cities < 1 {
		return fmt.Errorf("-cities %d: need at least one city", c.cities)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one shard", c.shards)
	}
	if c.shards > c.cities {
		return fmt.Errorf("-shards %d exceeds -cities %d: a city is the unit of parallelism", c.shards, c.cities)
	}
	if c.ingestTimeout <= 0 {
		return fmt.Errorf("-ingest-timeout %v: need a positive wall bound", c.ingestTimeout)
	}
	if c.maxEdge < 0 || c.maxDCC < 0 || c.maxQueue < 0 {
		return fmt.Errorf("admission limits must be non-negative (edge %d, dcc %d, queue %d)",
			c.maxEdge, c.maxDCC, c.maxQueue)
	}
	if c.mtbf > 0 && c.cities > 1 {
		return fmt.Errorf("-mtbf fault injection is single-city only for now")
	}
	if c.arrivalLog != "" {
		if err := cliutil.CheckWritableFile(c.arrivalLog); err != nil {
			return fmt.Errorf("-arrival-log: %w", err)
		}
	}
	return nil
}
