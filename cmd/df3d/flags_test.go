package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validLive() daemonConfig {
	return daemonConfig{
		addr: ":8080", buildings: 4, rooms: 6,
		live: true, speed: 60, maxSlice: 1, cities: 2, shards: 2,
		ingestTimeout: 30 * time.Second, traceSample: 1,
	}
}

func validStep() daemonConfig {
	return daemonConfig{
		addr: ":8080", buildings: 4, rooms: 6,
		speed: 1, maxSlice: 1, cities: 1, shards: 1,
		ingestTimeout: 30 * time.Second, traceSample: 1,
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name    string
		mutate  func(*daemonConfig)
		wantErr string // substring; "" = valid
	}{
		{"valid step", func(c *daemonConfig) {}, ""},
		{"valid live", func(c *daemonConfig) { *c = validLive() }, ""},
		{"valid live with log", func(c *daemonConfig) {
			*c = validLive()
			c.arrivalLog = filepath.Join(tmp, "arrivals.ndjson")
		}, ""},
		{"empty addr", func(c *daemonConfig) { c.addr = "" }, "-addr"},
		{"zero buildings", func(c *daemonConfig) { c.buildings = 0 }, "at least 1 building"},
		{"boilers exceed buildings", func(c *daemonConfig) { c.boilers = 99 }, "-boilers"},
		{"negative mtbf", func(c *daemonConfig) { c.mtbf = -1 }, "-mtbf"},
		{"speed without live", func(c *daemonConfig) { c.speed = 10 }, "-speed requires -live"},
		{"cities without live", func(c *daemonConfig) { c.cities = 4 }, "-cities requires -live"},
		{"shards without live", func(c *daemonConfig) { c.shards = 2 }, "-shards requires -live"},
		{"arrival log without live", func(c *daemonConfig) {
			c.arrivalLog = filepath.Join(tmp, "a.ndjson")
		}, "-arrival-log requires -live"},
		{"admission without live", func(c *daemonConfig) { c.maxEdge = 10 }, "require -live"},
		{"live zero speed", func(c *daemonConfig) { *c = validLive(); c.speed = 0 }, "-speed"},
		{"live negative slice", func(c *daemonConfig) { *c = validLive(); c.maxSlice = -1 }, "-max-slice"},
		{"live zero cities", func(c *daemonConfig) { *c = validLive(); c.cities = 0 }, "-cities"},
		{"live shards exceed cities", func(c *daemonConfig) {
			*c = validLive()
			c.shards = 5
		}, "-shards 5 exceeds"},
		{"live zero ingest timeout", func(c *daemonConfig) {
			*c = validLive()
			c.ingestTimeout = 0
		}, "-ingest-timeout"},
		{"live negative admission", func(c *daemonConfig) {
			*c = validLive()
			c.maxQueue = -1
		}, "admission limits"},
		{"live mtbf multi-city", func(c *daemonConfig) { *c = validLive(); c.mtbf = 10 }, "-mtbf"},
		{"live unwritable arrival log", func(c *daemonConfig) {
			*c = validLive()
			c.arrivalLog = filepath.Join(tmp, "no/such/dir/a.ndjson")
		}, "-arrival-log"},
		{"valid crash-safe live", func(c *daemonConfig) {
			*c = validLive()
			c.arrivalLog = filepath.Join(tmp, "wal.ndjson")
			c.checkpointDir = tmp
			c.checkpointEvery = 600
			c.walFsync = true
		}, ""},
		{"checkpoint dir without live", func(c *daemonConfig) {
			c.checkpointDir = tmp
		}, "require -live"},
		{"wal fsync without live", func(c *daemonConfig) {
			c.walFsync = true
		}, "require -live"},
		{"checkpoint dir without arrival log", func(c *daemonConfig) {
			*c = validLive()
			c.checkpointDir = tmp
		}, "-checkpoint-dir requires -arrival-log"},
		{"checkpoint every without dir", func(c *daemonConfig) {
			*c = validLive()
			c.checkpointEvery = 600
		}, "-checkpoint-every requires -checkpoint-dir"},
		{"negative checkpoint every", func(c *daemonConfig) {
			*c = validLive()
			c.arrivalLog = filepath.Join(tmp, "wal2.ndjson")
			c.checkpointDir = tmp
			c.checkpointEvery = -5
		}, "-checkpoint-every"},
		{"wal fsync without arrival log", func(c *daemonConfig) {
			*c = validLive()
			c.walFsync = true
		}, "-wal-fsync requires -arrival-log"},
		{"valid replay", func(c *daemonConfig) {
			c.replay = filepath.Join(tmp, "wal.ndjson")
			c.cities = 2
			c.shards = 2
		}, ""},
		{"replay with live", func(c *daemonConfig) {
			*c = validLive()
			c.replay = filepath.Join(tmp, "wal.ndjson")
		}, "drop -live"},
		{"replay with arrival log", func(c *daemonConfig) {
			c.replay = filepath.Join(tmp, "wal.ndjson")
			c.arrivalLog = filepath.Join(tmp, "out.ndjson")
		}, "exclusive"},
		{"replay with checkpoint flags", func(c *daemonConfig) {
			c.replay = filepath.Join(tmp, "wal.ndjson")
			c.checkpointDir = tmp
		}, "require -live"},
		{"valid live telemetry", func(c *daemonConfig) {
			*c = validLive()
			c.pprofEnabled = true
			c.flight = 4096
			c.traceSample = 8
			c.profile = true
		}, ""},
		{"valid step pprof", func(c *daemonConfig) { c.pprofEnabled = true }, ""},
		{"negative flight", func(c *daemonConfig) {
			*c = validLive()
			c.flight = -1
		}, "-flight"},
		{"zero trace sample", func(c *daemonConfig) {
			*c = validLive()
			c.traceSample = 0
		}, "-trace-sample"},
		{"trace sample without flight", func(c *daemonConfig) {
			*c = validLive()
			c.traceSample = 4
		}, "requires -flight"},
		{"flight without live", func(c *daemonConfig) { c.flight = 1024 }, "-flight requires -live"},
		{"profile without live", func(c *daemonConfig) { c.profile = true }, "-profile requires -live"},
		{"replay with pprof", func(c *daemonConfig) {
			c.replay = filepath.Join(tmp, "wal.ndjson")
			c.pprofEnabled = true
		}, "drop them for -replay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validStep()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error mentioning %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
