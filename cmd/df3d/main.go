// Command df3d serves a DF3 scenario over HTTP (see internal/api), in one
// of two modes.
//
// Step mode (default) is the deterministic interactive laboratory: the
// simulation advances only when a client POSTs /v1/step.
//
//	df3d -addr :8080 -buildings 4 -rooms 6 &
//	curl localhost:8080/v1/resources | jq .
//	curl -X POST localhost:8080/v1/rooms/0/0/setpoint -d '{"setpoint_c":23}'
//	curl -X POST localhost:8080/v1/step -d '{"seconds":3600}'
//	curl localhost:8080/metrics          # Prometheus text exposition
//
// Live mode (-live) is the serving plane: a paced driver advances a whole
// federation against the wall clock while POST /v1/edge, /v1/dcc and the
// streaming /v1/ingest inject real requests as external events, behind
// admission control, answering each with its simulated outcome. Every
// arrival is optionally recorded (-arrival-log) for byte-identical
// offline replay.
//
//	df3d -live -speed 60 -cities 2 -shards 2 -arrival-log arrivals.ndjson &
//	curl -X POST localhost:8080/v1/edge -d '{"tenant":7,"work_s":0.05,"deadline_s":1}'
//	df3load -url http://localhost:8080 -rate 200 -duration 10s
//
// On SIGINT/SIGTERM the daemon drains in-flight HTTP requests, stops the
// driver at a slice boundary, flushes the arrival log and writes a final
// metrics snapshot to stdout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"df3/internal/api"
	"df3/internal/city"
	"df3/internal/metrics"
	"df3/internal/sim"
)

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.buildings, "buildings", 4, "number of buildings per city")
	flag.IntVar(&cfg.rooms, "rooms", 6, "rooms per building")
	flag.IntVar(&cfg.boilers, "boilers", 0, "boiler-plant buildings")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.Float64Var(&cfg.mtbf, "mtbf", 0, "mean days between machine failures (0 disables)")
	flag.BoolVar(&cfg.live, "live", false, "serve in paced real time instead of step mode")
	flag.Float64Var(&cfg.speed, "speed", 1, "simulated seconds per wall second (live mode)")
	flag.Float64Var(&cfg.maxSlice, "max-slice", 1, "max simulated seconds per driver slice (live mode)")
	flag.IntVar(&cfg.cities, "cities", 1, "federation size (live mode)")
	flag.IntVar(&cfg.shards, "shards", 1, "shard workers driving the federation (live mode)")
	flag.StringVar(&cfg.arrivalLog, "arrival-log", "", "record arrivals as NDJSON for offline replay (live mode)")
	flag.DurationVar(&cfg.ingestTimeout, "ingest-timeout", 30*time.Second, "wall bound on waiting for an outcome (live mode)")
	flag.IntVar(&cfg.maxEdge, "max-inflight-edge", 0, "admission cap on in-flight edge requests (live mode, 0 = default)")
	flag.IntVar(&cfg.maxDCC, "max-inflight-dcc", 0, "admission cap on in-flight batch jobs (live mode, 0 = default)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "admission cap on the injection queue depth (live mode, 0 = default)")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "df3d:", err)
		os.Exit(2)
	}

	ccfg := city.DefaultConfig()
	ccfg.Seed = cfg.seed
	ccfg.Buildings = cfg.buildings
	ccfg.RoomsPerBuilding = cfg.rooms
	ccfg.BoilerBuildings = cfg.boilers
	if cfg.mtbf > 0 {
		ccfg.MTBF = sim.Time(cfg.mtbf) * sim.Day
	}

	if cfg.live {
		runLive(cfg, ccfg)
		return
	}
	runStep(cfg, ccfg)
}

// runStep hosts the step-driven single-city laboratory.
func runStep(cfg daemonConfig, ccfg city.Config) {
	c := city.Build(ccfg)
	fmt.Printf("df3d: %d buildings × %d rooms (%d boiler plants), %d DF machines, listening on %s\n",
		cfg.buildings, cfg.rooms, cfg.boilers, len(c.Fleet.Machines), cfg.addr)
	hint := cfg.addr
	if strings.HasPrefix(hint, ":") {
		hint = "localhost" + hint
	}
	fmt.Println("advance time with: curl -X POST " + hint + "/v1/step -d '{\"seconds\":3600}'")
	serve(cfg.addr, api.NewServer(c), func() *metrics.Registry { return c.Observability() }, nil)
}

// runLive hosts the paced serving plane.
func runLive(cfg daemonConfig, ccfg city.Config) {
	f := city.BuildFederation(city.FederationConfig{
		Seed: cfg.seed, Cities: cfg.cities, Shards: cfg.shards, City: ccfg,
	})
	lcfg := api.LiveConfig{
		Speed:         cfg.speed,
		MaxSlice:      sim.Time(cfg.maxSlice),
		IngestTimeout: cfg.ingestTimeout,
		Admission: api.AdmissionConfig{
			MaxInFlightEdge: cfg.maxEdge,
			MaxInFlightDCC:  cfg.maxDCC,
			MaxQueue:        cfg.maxQueue,
		},
	}
	var logFile *os.File
	if cfg.arrivalLog != "" {
		var err error
		logFile, err = os.Create(cfg.arrivalLog)
		if err != nil {
			log.Fatalf("df3d: -arrival-log: %v", err)
		}
		lcfg.ArrivalLog = logFile
	}
	live := api.NewLive(f, lcfg)
	machines := 0
	for _, c := range f.Cities {
		machines += len(c.Fleet.Machines)
	}
	fmt.Printf("df3d: live mode, %d cities × %d buildings × %d rooms on %d shards, %d DF machines, %gx speed, listening on %s\n",
		cfg.cities, cfg.buildings, cfg.rooms, cfg.shards, machines, cfg.speed, cfg.addr)
	live.Start()
	serve(cfg.addr, api.NewLiveServer(live), func() *metrics.Registry { return live.Registry() }, func() {
		if err := live.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "df3d: arrival log:", err)
		}
		if logFile != nil {
			if err := logFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "df3d: arrival log:", err)
			}
		}
	})
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully: stop accepting, drain in-flight requests (bounded), run the
// mode-specific drain hook, and flush a final metrics snapshot to stdout.
func serve(addr string, handler http.Handler, registry func() *metrics.Registry, drain func()) {
	srv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		// Listener died on its own (port in use, ...): nothing to drain.
		log.Fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "df3d: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "df3d: shutdown:", err)
	}
	if drain != nil {
		drain()
	}
	fmt.Println("# df3d final metrics snapshot")
	if err := registry().WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "df3d: snapshot:", err)
	}
}
