// Command df3d serves a DF3 scenario over HTTP (see internal/api), in one
// of two modes.
//
// Step mode (default) is the deterministic interactive laboratory: the
// simulation advances only when a client POSTs /v1/step.
//
//	df3d -addr :8080 -buildings 4 -rooms 6 &
//	curl localhost:8080/v1/resources | jq .
//	curl -X POST localhost:8080/v1/rooms/0/0/setpoint -d '{"setpoint_c":23}'
//	curl -X POST localhost:8080/v1/step -d '{"seconds":3600}'
//	curl localhost:8080/metrics          # Prometheus text exposition
//
// Live mode (-live) is the serving plane: a paced driver advances a whole
// federation against the wall clock while POST /v1/edge, /v1/dcc and the
// streaming /v1/ingest inject real requests as external events, behind
// admission control, answering each with its simulated outcome. Every
// arrival is optionally recorded (-arrival-log) for byte-identical
// offline replay.
//
//	df3d -live -speed 60 -cities 2 -shards 2 -arrival-log arrivals.ndjson &
//	curl -X POST localhost:8080/v1/edge -d '{"tenant":7,"work_s":0.05,"deadline_s":1}'
//	df3load -url http://localhost:8080 -rate 200 -duration 10s
//
// On SIGINT/SIGTERM the daemon drains in-flight HTTP requests, stops the
// driver at a slice boundary, flushes the arrival log and writes a final
// metrics snapshot to stdout.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"df3/internal/api"
	"df3/internal/checkpoint"
	"df3/internal/city"
	"df3/internal/metrics"
	"df3/internal/obs"
	"df3/internal/sim"
)

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.buildings, "buildings", 4, "number of buildings per city")
	flag.IntVar(&cfg.rooms, "rooms", 6, "rooms per building")
	flag.IntVar(&cfg.boilers, "boilers", 0, "boiler-plant buildings")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.Float64Var(&cfg.mtbf, "mtbf", 0, "mean days between machine failures (0 disables)")
	flag.BoolVar(&cfg.live, "live", false, "serve in paced real time instead of step mode")
	flag.Float64Var(&cfg.speed, "speed", 1, "simulated seconds per wall second (live mode)")
	flag.Float64Var(&cfg.maxSlice, "max-slice", 1, "max simulated seconds per driver slice (live mode)")
	flag.IntVar(&cfg.cities, "cities", 1, "federation size (live mode)")
	flag.IntVar(&cfg.shards, "shards", 1, "shard workers driving the federation (live mode)")
	flag.StringVar(&cfg.arrivalLog, "arrival-log", "", "record arrivals as NDJSON for offline replay (live mode)")
	flag.DurationVar(&cfg.ingestTimeout, "ingest-timeout", 30*time.Second, "wall bound on waiting for an outcome (live mode)")
	flag.IntVar(&cfg.maxEdge, "max-inflight-edge", 0, "admission cap on in-flight edge requests (live mode, 0 = default)")
	flag.IntVar(&cfg.maxDCC, "max-inflight-dcc", 0, "admission cap on in-flight batch jobs (live mode, 0 = default)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "admission cap on the injection queue depth (live mode, 0 = default)")
	flag.StringVar(&cfg.checkpointDir, "checkpoint-dir", "", "directory for crash-safe checkpoints; enables recovery on restart (live mode, needs -arrival-log)")
	flag.Float64Var(&cfg.checkpointEvery, "checkpoint-every", defaultCheckpointEvery, "simulated seconds between checkpoints (live mode)")
	flag.BoolVar(&cfg.walFsync, "wal-fsync", false, "fsync the arrival log on every record, not just at checkpoints (live mode)")
	flag.BoolVar(&cfg.pprofEnabled, "pprof", false, "expose Go profiling under /debug/pprof/ (serving modes)")
	flag.IntVar(&cfg.flight, "flight", 0, "flight recorder ring capacity per span source; serves GET /v1/traces (live mode, 0 disables)")
	flag.IntVar(&cfg.traceSample, "trace-sample", 1, "keep 1 in N trace spans in the flight recorder (live mode)")
	flag.BoolVar(&cfg.profile, "profile", false, "account per-shard busy/idle wall time and barrier limiters (live mode)")
	flag.StringVar(&cfg.replay, "replay", "", "offline mode: replay a recorded arrival log and print the federation checksum")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "df3d:", err)
		os.Exit(2)
	}

	ccfg := city.DefaultConfig()
	ccfg.Seed = cfg.seed
	ccfg.Buildings = cfg.buildings
	ccfg.RoomsPerBuilding = cfg.rooms
	ccfg.BoilerBuildings = cfg.boilers
	if cfg.mtbf > 0 {
		ccfg.MTBF = sim.Time(cfg.mtbf) * sim.Day
	}

	if cfg.replay != "" {
		runReplay(cfg, ccfg)
		return
	}
	if cfg.live {
		runLive(cfg, ccfg)
		return
	}
	runStep(cfg, ccfg)
}

// checksumLine is the final-state fingerprint format every mode prints;
// the chaos harness and operators diff these lines across runs.
const checksumLine = "# df3d federation checksum: 0x%016x\n"

// buildRecipe serialises the flags that determine the federation build —
// the recipe a checkpoint seals and recovery must match byte for byte.
func buildRecipe(cfg daemonConfig) []byte {
	b, err := json.Marshal(struct {
		Seed      uint64  `json:"seed"`
		Cities    int     `json:"cities"`
		Shards    int     `json:"shards"`
		Buildings int     `json:"buildings"`
		Rooms     int     `json:"rooms"`
		Boilers   int     `json:"boilers"`
		MTBFDays  float64 `json:"mtbf_days"`
	}{cfg.seed, cfg.cities, cfg.shards, cfg.buildings, cfg.rooms, cfg.boilers, cfg.mtbf})
	if err != nil {
		panic(err) // a struct of scalars cannot fail to marshal
	}
	return b
}

// buildFederation builds the live/replay federation from the shared flags.
func buildFederation(cfg daemonConfig, ccfg city.Config) *city.Federation {
	return city.BuildFederation(city.FederationConfig{
		Seed: cfg.seed, Cities: cfg.cities, Shards: cfg.shards, City: ccfg,
	})
}

// runReplay re-executes a recorded arrival log offline and prints the
// resulting federation checksum — the auditable twin of a live session,
// and the reference a chaos-recovered daemon is compared against.
func runReplay(cfg daemonConfig, ccfg city.Config) {
	raw, err := os.ReadFile(cfg.replay)
	if err != nil {
		log.Fatalf("df3d: -replay: %v", err)
	}
	lg := api.ParseArrivalLog(raw)
	if lg.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "df3d: replay: skipped %d torn trailing bytes\n", lg.Skipped)
	}
	f := buildFederation(cfg, ccfg)
	api.ReplayRecords(f, lg.Records)
	sum := f.Summarize()
	fmt.Printf("# df3d replay: %d records, sim time %.0f s, edge served %d, jobs done %d\n",
		len(lg.Records), float64(f.Now()), sum.EdgeServed, sum.JobsDone)
	fmt.Printf(checksumLine, f.Checksum())
}

// withPprof mounts the Go profiling handlers beside the API — explicit
// registrations on a private mux, so nothing leaks through the default
// mux and the surface only exists behind -pprof. Profiling endpoints
// bypass the API's JSON-error hardening deliberately: pprof speaks its
// own content types.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

// runStep hosts the step-driven single-city laboratory.
func runStep(cfg daemonConfig, ccfg city.Config) {
	c := city.Build(ccfg)
	obs.RegisterRuntime(c.Observability())
	fmt.Printf("df3d: %d buildings × %d rooms (%d boiler plants), %d DF machines, listening on %s\n",
		cfg.buildings, cfg.rooms, cfg.boilers, len(c.Fleet.Machines), cfg.addr)
	hint := cfg.addr
	if strings.HasPrefix(hint, ":") {
		hint = "localhost" + hint
	}
	fmt.Println("advance time with: curl -X POST " + hint + "/v1/step -d '{\"seconds\":3600}'")
	var handler http.Handler = api.NewServer(c)
	if cfg.pprofEnabled {
		handler = withPprof(handler)
	}
	serve(cfg.addr, handler, func() *metrics.Registry { return c.Observability() }, nil, nil)
}

// runLive hosts the paced serving plane. With -checkpoint-dir it is
// crash-safe: an existing arrival log (the WAL) is recovered — torn tail
// truncated, latest valid checkpoint loaded, WAL replayed and verified —
// before the daemon starts serving, and new checkpoints are written at
// slice boundaries while it runs.
func runLive(cfg daemonConfig, ccfg city.Config) {
	f := buildFederation(cfg, ccfg)
	lcfg := api.LiveConfig{
		Speed:         cfg.speed,
		MaxSlice:      sim.Time(cfg.maxSlice),
		IngestTimeout: cfg.ingestTimeout,
		Admission: api.AdmissionConfig{
			MaxInFlightEdge: cfg.maxEdge,
			MaxInFlightDCC:  cfg.maxDCC,
			MaxQueue:        cfg.maxQueue,
		},
		BuildConfig:   buildRecipe(cfg),
		CheckpointDir: cfg.checkpointDir,
		WALFsyncEach:  cfg.walFsync,
	}
	if cfg.checkpointDir != "" {
		lcfg.CheckpointEvery = sim.Time(cfg.checkpointEvery)
		if err := os.MkdirAll(cfg.checkpointDir, 0o755); err != nil {
			log.Fatalf("df3d: -checkpoint-dir: %v", err)
		}
	}
	var logFile *os.File
	if cfg.arrivalLog != "" {
		var err error
		logFile, err = openWAL(cfg, &lcfg)
		if err != nil {
			log.Fatalf("df3d: %v", err)
		}
		lcfg.ArrivalLog = logFile
	}
	if cfg.flight > 0 {
		// One sampling policy governs both planes: the per-city recorder
		// rings and the ingest request recorder. City rings attach before
		// NewLive (which attaches "ingest" itself, then registers the
		// flight series) so Flight.Register sees every source.
		pol := obs.Policy{Default: cfg.traceSample}
		fl := obs.NewFlight(cfg.flight, pol)
		f.EnableTracing(cfg.flight)
		f.AttachFlight(fl)
		lcfg.Flight = fl
		lcfg.TracePolicy = pol
		lcfg.TraceCapacity = cfg.flight
	}
	if cfg.profile {
		f.Kernel.EnableProfile()
	}
	live := api.NewLive(f, lcfg)
	obs.RegisterRuntime(live.Registry())
	machines := 0
	for _, c := range f.Cities {
		machines += len(c.Fleet.Machines)
	}
	fmt.Printf("df3d: live mode, %d cities × %d buildings × %d rooms on %d shards, %d DF machines, %gx speed, listening on %s\n",
		cfg.cities, cfg.buildings, cfg.rooms, cfg.shards, machines, cfg.speed, cfg.addr)
	if len(lcfg.Resume) > 0 || lcfg.VerifySnapshot != nil {
		fmt.Printf("df3d: recovering %d WAL records (checkpoint covers %d), traffic gated on /readyz\n",
			len(lcfg.Resume), lcfg.VerifyAfter)
	}
	live.Start()

	// A failed recovery must kill the daemon, not leave it listening and
	// permanently unready.
	abort := make(chan error, 1)
	go func() {
		select {
		case <-live.Ready():
		case <-live.Done():
			if err := live.RecoverErr(); err != nil {
				abort <- err
			}
		}
	}()
	var handler http.Handler = api.NewLiveServer(live)
	if cfg.pprofEnabled {
		handler = withPprof(handler)
	}
	serve(cfg.addr, handler, func() *metrics.Registry { return live.Registry() }, abort, func() {
		if err := live.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "df3d: arrival log:", err)
		}
		if logFile != nil {
			if err := logFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "df3d: arrival log:", err)
			}
		}
		fmt.Printf(checksumLine, f.Checksum())
	})
}

// openWAL opens the arrival log. Without -checkpoint-dir it truncates and
// records afresh, the pre-crash-safety behaviour. With it, an existing
// non-empty log is a WAL left by a previous run: the torn tail is
// truncated away, the durable records become the resume log, and the
// newest checkpoint consistent with the durable bytes is loaded for
// fast-forward verification. The file reopens in append mode so the
// recovered session extends the same history.
func openWAL(cfg daemonConfig, lcfg *api.LiveConfig) (*os.File, error) {
	if cfg.checkpointDir == "" {
		f, err := os.Create(cfg.arrivalLog)
		if err != nil {
			return nil, fmt.Errorf("-arrival-log: %w", err)
		}
		return f, nil
	}
	raw, err := os.ReadFile(cfg.arrivalLog)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("-arrival-log: %w", err)
	}
	lg := api.ParseArrivalLog(raw)
	if lg.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "df3d: WAL: truncating %d torn trailing bytes (crash residue)\n", lg.Skipped)
	}
	if len(raw) > 0 {
		if err := os.Truncate(cfg.arrivalLog, lg.Valid); err != nil {
			return nil, fmt.Errorf("WAL truncate: %w", err)
		}
	}
	if len(lg.Records) > 0 {
		lcfg.Resume = lg.Records
		lcfg.ResumeSeq = lg.MaxSeq + 1
		if snap := loadCheckpoint(cfg, lcfg.BuildConfig, lg.Valid); snap != nil {
			lcfg.VerifySnapshot = snap
			lcfg.VerifyAfter = lg.Covered(snap.Meta.WALOffset)
			if snap.Meta.NextSeq > lcfg.ResumeSeq {
				lcfg.ResumeSeq = snap.Meta.NextSeq
			}
		}
	}
	lcfg.ArrivalLogOffset = lg.Valid
	f, err := os.OpenFile(cfg.arrivalLog, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("-arrival-log: %w", err)
	}
	return f, nil
}

// loadCheckpoint returns the newest usable checkpoint, or nil when
// recovery must replay the whole WAL instead: none exist, or the newest
// claims to cover more WAL bytes than are durable. The protocol fsyncs
// the WAL before each checkpoint write, so that can only mean the WAL
// file was damaged or swapped — distrust the snapshot, trust the log. A
// recipe mismatch is fatal rather than skippable: the WAL and checkpoints
// describe a different scenario, and replaying them into this build would
// silently fork history.
func loadCheckpoint(cfg daemonConfig, recipe []byte, durable int64) *checkpoint.Snapshot {
	snap, path, skipped, err := checkpoint.Latest(cfg.checkpointDir)
	for _, name := range skipped {
		fmt.Fprintf(os.Stderr, "df3d: checkpoint %s unreadable (truncated or corrupt), skipped\n", name)
	}
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintln(os.Stderr, "df3d: checkpoints unusable, replaying full WAL:", err)
		}
		return nil
	}
	if !bytes.Equal(snap.Config, recipe) {
		log.Fatalf("df3d: checkpoint %s was built from a different recipe (%s, current %s); refusing to mix histories",
			path, snap.Config, recipe)
	}
	if snap.Meta.WALOffset > durable {
		fmt.Fprintf(os.Stderr, "df3d: checkpoint %s covers %d WAL bytes but only %d are durable; ignoring it\n",
			path, snap.Meta.WALOffset, durable)
		return nil
	}
	fmt.Printf("df3d: recovering from checkpoint %s (sim time %.0f s, %d WAL bytes covered)\n",
		path, float64(snap.Meta.SimTime), snap.Meta.WALOffset)
	return snap
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully: stop accepting, drain in-flight requests (bounded), run the
// mode-specific drain hook, and flush a final metrics snapshot to stdout.
// A value on abort (a failed recovery) is fatal immediately — a daemon
// that cannot restore its history must not serve an empty one.
func serve(addr string, handler http.Handler, registry func() *metrics.Registry, abort <-chan error, drain func()) {
	srv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		// Listener died on its own (port in use, ...): nothing to drain.
		log.Fatal(err)
	case err := <-abort:
		log.Fatalf("df3d: recovery failed: %v", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "df3d: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "df3d: shutdown:", err)
	}
	if drain != nil {
		drain()
	}
	fmt.Println("# df3d final metrics snapshot")
	if err := registry().WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "df3d: snapshot:", err)
	}
}
