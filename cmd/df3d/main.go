// Command df3d serves a DF3 city scenario over the resource-oriented HTTP
// interface of §IV (see internal/api). The simulation is deterministic and
// advances only when a client POSTs /v1/step, so the daemon doubles as an
// interactive laboratory:
//
//	df3d -addr :8080 -buildings 4 -rooms 6 &
//	curl localhost:8080/v1/resources | jq .
//	curl -X POST localhost:8080/v1/rooms/0/0/setpoint -d '{"setpoint_c":23}'
//	curl -X POST localhost:8080/v1/step -d '{"seconds":3600}'
//	curl localhost:8080/v1/metrics | jq .
//	curl localhost:8080/metrics          # Prometheus text exposition
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"df3/internal/api"
	"df3/internal/city"
	"df3/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		buildings = flag.Int("buildings", 4, "number of buildings")
		rooms     = flag.Int("rooms", 6, "rooms per building")
		boilers   = flag.Int("boilers", 0, "boiler-plant buildings")
		seed      = flag.Uint64("seed", 1, "random seed")
		mtbf      = flag.Float64("mtbf", 0, "mean days between machine failures (0 disables)")
	)
	flag.Parse()

	cfg := city.DefaultConfig()
	cfg.Seed = *seed
	cfg.Buildings = *buildings
	cfg.RoomsPerBuilding = *rooms
	cfg.BoilerBuildings = *boilers
	if *mtbf > 0 {
		cfg.MTBF = sim.Time(*mtbf) * sim.Day
	}

	c := city.Build(cfg)
	fmt.Printf("df3d: %d buildings × %d rooms (%d boiler plants), %d DF machines, listening on %s\n",
		*buildings, *rooms, *boilers, len(c.Fleet.Machines), *addr)
	hint := *addr
	if strings.HasPrefix(hint, ":") {
		hint = "localhost" + hint
	}
	fmt.Println("advance time with: curl -X POST " + hint + "/v1/step -d '{\"seconds\":3600}'")
	log.Fatal(http.ListenAndServe(*addr, api.NewServer(c)))
}
