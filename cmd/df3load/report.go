package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"df3/internal/metrics"
)

// ingestClasses and ingestOutcomes mirror internal/api's label vocabulary
// for the df3_ingest_* series.
var (
	ingestClasses  = []string{"edge", "dcc"}
	ingestOutcomes = []string{"served", "done", "rejected", "lost", "shed", "timeout", "closed"}
)

// writeReport prints the run summary: the client-side view (what df3load
// itself observed on the wire) and the server-side SLO table scraped from
// /metrics (what the simulation decided).
func writeReport(w io.Writer, cfg *loadConfig, elapsed time.Duration, t *tally, scraped map[string]float64) {
	t.mu.Lock()
	sent := t.sent
	byOutcome := make(map[string]int64, len(t.byOutcome))
	for k, v := range t.byOutcome {
		byOutcome[k] = v
	}
	t.mu.Unlock()

	mode := fmt.Sprintf("open loop, %g req/s", cfg.rate)
	if cfg.conns > 0 {
		mode = fmt.Sprintf("closed loop, %d conns", cfg.conns)
	}
	fmt.Fprintf(w, "\n=== df3load report ===\n")
	fmt.Fprintf(w, "mode      %s (%s profile)\n", mode, cfg.profile)
	fmt.Fprintf(w, "duration  %.2fs wall\n", elapsed.Seconds())
	fmt.Fprintf(w, "requests  %d (%.1f req/s achieved)\n", sent, float64(sent)/elapsed.Seconds())

	fmt.Fprintf(w, "\n--- client view (wire outcomes) ---\n")
	keys := make([]string, 0, len(byOutcome))
	for k := range byOutcome {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := byOutcome[k]
		fmt.Fprintf(w, "%-16s %8d  %6.2f%%\n", k, n, pct(n, sent))
	}
	fmt.Fprintf(w, "wall latency     p50 %s  p90 %s  p99 %s\n",
		fmtSecs(t.latency.Quantile(0.5)), fmtSecs(t.latency.Quantile(0.9)), fmtSecs(t.latency.Quantile(0.99)))

	fmt.Fprintf(w, "\n--- server SLO (scraped from /metrics) ---\n")
	if len(scraped) == 0 {
		fmt.Fprintf(w, "(scrape unavailable)\n")
		return
	}
	fmt.Fprintf(w, "%-6s %-10s %10s %9s\n", "class", "outcome", "count", "fraction")
	for _, class := range ingestClasses {
		var total float64
		for _, outcome := range ingestOutcomes {
			total += scraped[requestsKey(class, outcome)]
		}
		if total == 0 {
			continue
		}
		for _, outcome := range ingestOutcomes {
			n := scraped[requestsKey(class, outcome)]
			if n == 0 {
				continue
			}
			fmt.Fprintf(w, "%-6s %-10s %10.0f %8.2f%%\n", class, outcome, n, 100*n/total)
		}
		fmt.Fprintf(w, "%-6s wall  p50 %s  p90 %s  p99 %s\n",
			class,
			fmtSecs(quantileOf(scraped, "df3_ingest_wall_seconds", class, "0.5")),
			fmtSecs(quantileOf(scraped, "df3_ingest_wall_seconds", class, "0.9")),
			fmtSecs(quantileOf(scraped, "df3_ingest_wall_seconds", class, "0.99")))
		fmt.Fprintf(w, "%-6s sim   p50 %s  p90 %s  p99 %s\n",
			class,
			fmtSecs(quantileOf(scraped, "df3_ingest_sim_seconds", class, "0.5")),
			fmtSecs(quantileOf(scraped, "df3_ingest_sim_seconds", class, "0.9")),
			fmtSecs(quantileOf(scraped, "df3_ingest_sim_seconds", class, "0.99")))
	}
}

// jsonSummary is the -summary-json document: the same facts as the text
// report, shaped for CI assertions (jq-friendly, stable keys).
type jsonSummary struct {
	Mode        string  `json:"mode"` // "open" or "closed"
	Profile     string  `json:"profile"`
	DurationS   float64 `json:"duration_s"`
	Sent        int64   `json:"requests_sent"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Client is the wire view: HTTP outcome label → count.
	Client map[string]int64 `json:"client_outcomes"`
	// ClientWallS holds the client latency quantiles ("p50","p90","p99").
	ClientWallS map[string]float64 `json:"client_wall_quantiles_s"`
	// ScrapeOK is false when /metrics was unreachable; the server maps
	// are then empty, and CI must treat assertions on them as failed.
	ScrapeOK bool `json:"scrape_ok"`
	// Server is the simulation's verdict: class → outcome → count.
	Server map[string]map[string]float64 `json:"server_requests,omitempty"`
	// ServerWallS is class → quantile name → seconds.
	ServerWallS map[string]map[string]float64 `json:"server_wall_quantiles_s,omitempty"`
}

// buildSummary folds the run into the machine-readable summary. Pure
// given its inputs, which keeps -summary-json unit-testable.
func buildSummary(cfg *loadConfig, elapsed time.Duration, t *tally, scraped map[string]float64) jsonSummary {
	t.mu.Lock()
	sent := t.sent
	client := make(map[string]int64, len(t.byOutcome))
	for k, v := range t.byOutcome {
		client[k] = v
	}
	t.mu.Unlock()

	mode := "open"
	if cfg.conns > 0 {
		mode = "closed"
	}
	s := jsonSummary{
		Mode:      mode,
		Profile:   cfg.profile,
		DurationS: elapsed.Seconds(),
		Sent:      sent,
		Client:    client,
		ClientWallS: map[string]float64{
			"p50": t.latency.Quantile(0.5),
			"p90": t.latency.Quantile(0.9),
			"p99": t.latency.Quantile(0.99),
		},
		ScrapeOK: len(scraped) > 0,
	}
	if elapsed > 0 {
		s.AchievedRPS = float64(sent) / elapsed.Seconds()
	}
	if !s.ScrapeOK {
		return s
	}
	s.Server = map[string]map[string]float64{}
	s.ServerWallS = map[string]map[string]float64{}
	for _, class := range ingestClasses {
		counts := map[string]float64{}
		var total float64
		for _, outcome := range ingestOutcomes {
			if n := scraped[requestsKey(class, outcome)]; n > 0 {
				counts[outcome] = n
				total += n
			}
		}
		if total == 0 {
			continue
		}
		s.Server[class] = counts
		s.ServerWallS[class] = map[string]float64{
			"p50": quantileOf(scraped, "df3_ingest_wall_seconds", class, "0.5"),
			"p90": quantileOf(scraped, "df3_ingest_wall_seconds", class, "0.9"),
			"p99": quantileOf(scraped, "df3_ingest_wall_seconds", class, "0.99"),
		}
	}
	return s
}

// writeSummaryJSON emits the summary as one indented JSON document.
func writeSummaryJSON(w io.Writer, s jsonSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func requestsKey(class, outcome string) string {
	return metrics.ID("df3_ingest_requests_total", metrics.Labels{"class": class, "outcome": outcome})
}

func quantileOf(scraped map[string]float64, name, class, q string) float64 {
	return scraped[metrics.ID(name, metrics.Labels{"class": class, "quantile": q})]
}

func pct(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// fmtSecs renders a latency with a unit that keeps 3 significant figures
// readable across the µs-to-minutes span live runs produce.
func fmtSecs(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
