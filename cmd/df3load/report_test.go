package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// cannedScrape mimics a live df3d /metrics after a short run.
func cannedScrape() map[string]float64 {
	return map[string]float64{
		requestsKey("edge", "served"):                           90,
		requestsKey("edge", "rejected"):                         5,
		requestsKey("edge", "shed"):                             5,
		requestsKey("dcc", "done"):                              10,
		`df3_ingest_wall_seconds{class="edge",quantile="0.5"}`:  0.02,
		`df3_ingest_wall_seconds{class="edge",quantile="0.9"}`:  0.08,
		`df3_ingest_wall_seconds{class="edge",quantile="0.99"}`: 0.2,
		`df3_ingest_wall_seconds{class="dcc",quantile="0.99"}`:  3.5,
	}
}

func tallyOf(outcomes map[string]int64, latencies ...float64) *tally {
	t := newTally()
	for k, v := range outcomes {
		t.byOutcome[k] = v
		t.sent += v
	}
	for _, l := range latencies {
		t.latency.Observe(l)
	}
	return t
}

func TestBuildSummary(t *testing.T) {
	cfg := &loadConfig{rate: 50, profile: "steady"}
	tl := tallyOf(map[string]int64{"served": 90, "shed": 10}, 0.01, 0.02, 0.03, 0.04, 0.05)
	s := buildSummary(cfg, 2*time.Second, tl, cannedScrape())

	if s.Mode != "open" || s.Profile != "steady" {
		t.Fatalf("mode/profile = %s/%s", s.Mode, s.Profile)
	}
	if s.Sent != 100 || s.AchievedRPS != 50 {
		t.Fatalf("sent %d rps %.1f, want 100 at 50/s", s.Sent, s.AchievedRPS)
	}
	if s.Client["served"] != 90 || s.Client["shed"] != 10 {
		t.Fatalf("client outcomes %v", s.Client)
	}
	if s.ClientWallS["p50"] <= 0 {
		t.Fatalf("client p50 %v", s.ClientWallS)
	}
	if !s.ScrapeOK {
		t.Fatal("scrape marked failed")
	}
	if s.Server["edge"]["served"] != 90 || s.Server["edge"]["rejected"] != 5 {
		t.Fatalf("server edge counts %v", s.Server["edge"])
	}
	if s.Server["dcc"]["done"] != 10 {
		t.Fatalf("server dcc counts %v", s.Server["dcc"])
	}
	if s.ServerWallS["edge"]["p99"] != 0.2 {
		t.Fatalf("server edge p99 %v", s.ServerWallS["edge"])
	}
	// Zero-count outcomes are omitted, not zero-valued.
	if _, ok := s.Server["edge"]["timeout"]; ok {
		t.Fatal("zero outcome should be absent")
	}
}

func TestBuildSummaryScrapeUnavailable(t *testing.T) {
	cfg := &loadConfig{conns: 4, profile: "ramp"}
	s := buildSummary(cfg, time.Second, tallyOf(map[string]int64{"served": 3}), nil)
	if s.Mode != "closed" {
		t.Fatalf("mode %s", s.Mode)
	}
	if s.ScrapeOK || s.Server != nil || s.ServerWallS != nil {
		t.Fatalf("failed scrape must leave server maps empty: %+v", s)
	}
}

// TestSummaryJSONRoundTrip: the emitted document decodes back with the
// keys CI asserts on.
func TestSummaryJSONRoundTrip(t *testing.T) {
	cfg := &loadConfig{rate: 10, profile: "steady"}
	s := buildSummary(cfg, time.Second, tallyOf(map[string]int64{"served": 7}), cannedScrape())
	var buf bytes.Buffer
	if err := writeSummaryJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mode", "requests_sent", "client_outcomes", "scrape_ok", "server_requests"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("summary JSON missing %q:\n%s", key, buf.String())
		}
	}
}
