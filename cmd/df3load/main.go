// Command df3load drives a live df3d (-live) over HTTP: an open-loop
// (fixed arrival rate, -rate) or closed-loop (fixed concurrency, -conns)
// generator with a Zipf tenant mix and ramp/spike/diurnal rate profiles,
// reporting a client-side outcome table and the server's SLO counters and
// latency quantiles scraped from /metrics.
//
//	df3d -live -speed 60 &
//	df3load -url http://localhost:8080 -rate 500 -duration 10s -profile spike
//	df3load -url http://localhost:8080 -conns 32 -duration 30s -dcc-frac 0.05
//
// All randomness comes from an internal/rng stream: the same seed replays
// the same tenant sequence and request shapes (arrival instants still
// depend on the host clock — the arrival log on the server side is the
// deterministic record).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"df3/internal/metrics"
	"df3/internal/rng"
)

// wallNow is df3load's single sanctioned wall-clock read.
func wallNow() time.Time {
	return time.Now() //df3:allow(detrand) df3load measures a live server with real clients; the wall clock is its instrument, not sim state
}

// maxInFlight caps client-side concurrency in open-loop mode. Arrivals
// past the cap are counted as client_overload instead of spawning — the
// generator itself must not melt before the server does.
const maxInFlight = 8192

// tally aggregates client-observed outcomes and latency.
type tally struct {
	mu        sync.Mutex
	byOutcome map[string]int64
	sent      int64
	latency   *metrics.Histogram
}

func newTally() *tally {
	// A private registry just to own the P² histogram.
	r := metrics.NewRegistry()
	return &tally{
		byOutcome: map[string]int64{},
		latency:   r.Histogram("df3load_client_seconds", "", nil, 0.5, 0.9, 0.99),
	}
}

func (t *tally) record(outcome string, secs float64) {
	t.latency.Observe(secs)
	t.mu.Lock()
	t.byOutcome[outcome]++
	t.sent++
	t.mu.Unlock()
}

// generator draws request descriptors from seeded streams. Not
// concurrency-safe: the open loop owns one, each closed-loop worker forks
// its own.
type generator struct {
	cfg  *loadConfig
	s    *rng.Stream
	zipf *rng.Zipf
}

func newGenerator(cfg *loadConfig, s *rng.Stream) *generator {
	return &generator{cfg: cfg, s: s, zipf: rng.NewZipf(s.ForkNamed("tenants"), cfg.tenants, cfg.zipfS)}
}

// arrival is one ready-to-send request.
type arrival struct {
	path string
	body []byte
}

func (g *generator) next() arrival {
	tenant := g.zipf.Draw()
	if g.s.Bool(g.cfg.dccFrac) {
		frames := 1 + g.s.Intn(2*g.cfg.frames-1) // mean ≈ cfg.frames
		works := make([]float64, frames)
		for i := range works {
			// Batch frames are much heavier than edge requests.
			works[i] = g.s.Exp(1 / (50 * g.cfg.workS))
		}
		b, _ := json.Marshal(map[string]any{"tenant": tenant, "frame_work_s": works})
		return arrival{path: "/v1/dcc", body: b}
	}
	b, _ := json.Marshal(map[string]any{
		"tenant":     tenant,
		"work_s":     g.s.Exp(1 / g.cfg.workS),
		"deadline_s": g.cfg.deadS,
	})
	return arrival{path: "/v1/edge", body: b}
}

// retryCap bounds the exponential backoff: past ~2s a df3d restart has
// either recovered or the run is lost anyway.
const retryCap = 2 * time.Second

// retrier re-issues requests that failed for transient reasons — the
// server restarting (connection refused), recovering (503) or shedding
// (429). Jitter comes from a seeded rng stream shared across request
// goroutines, so a mutex guards the draw.
type retrier struct {
	max  int
	base time.Duration
	mu   sync.Mutex
	s    *rng.Stream
}

// backoff returns the pause before retry number attempt (0-based):
// base·2^attempt, capped, then jittered to 50–100% so a fleet of blocked
// clients does not thunder back in lockstep.
func (r *retrier) backoff(attempt int) time.Duration {
	d := retryCap
	if attempt < 20 { // past 2^20 the shift is always over the cap
		if step := r.base << attempt; step < retryCap {
			d = step
		}
	}
	half := d / 2
	r.mu.Lock()
	j := time.Duration(r.s.Intn(int(half) + 1))
	r.mu.Unlock()
	return half + j
}

// retryable reports whether the attempt's failure is transient: any
// transport error (refused, reset, timed out) or an explicit back-off
// status from the server.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable
}

// waitReady polls /readyz until the server reports serving, the endpoint
// does not exist (an older df3d without readiness), or the wait budget is
// spent. A recovering df3d answers 503 here while it replays its WAL.
func waitReady(client *http.Client, base string, wait time.Duration) error {
	if wait <= 0 {
		return nil
	}
	deadline := wallNow().Add(wait)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if code == http.StatusOK || code == http.StatusNotFound {
				return nil
			}
		}
		if !wallNow().Before(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %v: %w", wait, err)
			}
			return fmt.Errorf("server not ready after %v", wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// doRequest posts one arrival and records its outcome: the server's
// verdict when the body parses, the HTTP status otherwise. With rt set,
// transient failures are retried with jittered backoff; the recorded
// latency spans all attempts — a retried request really did take that
// long to settle.
func doRequest(client *http.Client, base string, a arrival, t *tally, rt *retrier) {
	start := wallNow()
	var resp *http.Response
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = client.Post(base+a.path, "application/json", bytes.NewReader(a.body))
		if rt == nil || attempt >= rt.max || !retryable(resp, err) {
			break
		}
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		time.Sleep(rt.backoff(attempt))
	}
	if err != nil {
		t.record("error", wallNow().Sub(start).Seconds())
		return
	}
	var out struct {
		Outcome string `json:"outcome"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	verdict := out.Outcome
	if verdict == "" {
		verdict = fmt.Sprintf("http_%d", resp.StatusCode)
	}
	t.record(verdict, wallNow().Sub(start).Seconds())
}

// runOpen fires arrivals at the profile-shaped rate regardless of response
// times — the arrival process is a thinned Poisson stream whose intensity
// follows profileScale. Arrival instants are precomputed on the generator
// stream and fired in batches, so the loop sustains 10k+ req/s without a
// per-arrival sleep.
func runOpen(cfg *loadConfig, client *http.Client, gen *generator, t *tally, rt *retrier) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInFlight)
	start := wallNow()
	dur := cfg.duration.Seconds()
	next := 0.0 // offset of the next arrival, in seconds since start
	for {
		now := wallNow().Sub(start).Seconds()
		if now >= dur {
			break
		}
		for next <= now && next < dur {
			a := gen.next()
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					doRequest(client, cfg.url, a, t, rt)
				}()
			default:
				t.record("client_overload", 0)
			}
			r := cfg.rate * profileScale(cfg.profile, next/dur)
			if r < 1e-6 {
				r = 1e-6
			}
			next += gen.s.Exp(r)
		}
		wait := time.Duration((next - now) * float64(time.Second))
		if wait > 5*time.Millisecond {
			wait = 5 * time.Millisecond
		}
		if wait > 0 {
			time.Sleep(wait)
		}
	}
	wg.Wait()
}

// runClosed keeps -conns workers each issuing the next request as soon as
// the previous one answers: throughput floats with server latency, the
// classic saturation probe. The profile still shapes it — workers insert
// pacing gaps where the profile dips below 1.
func runClosed(cfg *loadConfig, client *http.Client, seed *rng.Stream, t *tally, rt *retrier) {
	var wg sync.WaitGroup
	start := wallNow()
	dur := cfg.duration.Seconds()
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		ws := seed.Fork(uint64(w))
		go func() {
			defer wg.Done()
			gen := newGenerator(cfg, ws)
			for {
				now := wallNow().Sub(start).Seconds()
				if now >= dur {
					return
				}
				scale := profileScale(cfg.profile, now/dur)
				if scale < 1 && gen.s.Float64() > scale {
					time.Sleep(time.Millisecond)
					continue
				}
				doRequest(client, cfg.url, gen.next(), t, rt)
			}
		}()
	}
	wg.Wait()
}

// scrape fetches and parses the server's /metrics exposition.
func scrape(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	return metrics.ParsePrometheus(resp.Body)
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.url, "url", "http://localhost:8080", "df3d base URL")
	flag.Float64Var(&cfg.rate, "rate", 0, "open loop: arrivals per second (exclusive with -conns)")
	flag.IntVar(&cfg.conns, "conns", 0, "closed loop: concurrent workers (exclusive with -rate)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length")
	flag.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "per-request HTTP timeout")
	flag.Uint64Var(&cfg.seed, "seed", 1, "generator seed (tenant mix and request shapes)")
	flag.IntVar(&cfg.tenants, "tenants", 1000, "tenant population for the Zipf mix")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.2, "Zipf exponent of the tenant mix")
	flag.StringVar(&cfg.profile, "profile", "steady", "rate profile: steady|ramp|spike|diurnal")
	flag.Float64Var(&cfg.dccFrac, "dcc-frac", 0, "fraction of arrivals that are batch jobs")
	flag.Float64Var(&cfg.workS, "work", 0.05, "mean edge request work in simulated seconds")
	flag.Float64Var(&cfg.deadS, "deadline", 1, "edge deadline in simulated seconds (0 = none)")
	flag.IntVar(&cfg.frames, "frames", 8, "mean frames per batch job")
	flag.StringVar(&cfg.report, "report", "", "write the SLO report to this file instead of stdout")
	flag.StringVar(&cfg.summaryJSON, "summary-json", "", "also write a machine-readable run summary to this file (\"-\" = stdout)")
	flag.BoolVar(&cfg.retry, "retry", false, "retry 429/503/connection-refused with jittered backoff")
	flag.IntVar(&cfg.retryMax, "retry-max", defaultRetryMax, "retries per request (needs -retry)")
	flag.DurationVar(&cfg.retryBase, "retry-base", defaultRetryBase, "first backoff step (needs -retry)")
	flag.DurationVar(&cfg.waitReady, "wait-ready", 30*time.Second, "poll /readyz this long before opening load (0 = don't wait)")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "df3load:", err)
		os.Exit(2)
	}

	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        maxInFlight,
			MaxIdleConnsPerHost: maxInFlight,
		},
	}
	seed := rng.New(cfg.seed)
	t := newTally()
	var rt *retrier
	if cfg.retry {
		rt = &retrier{max: cfg.retryMax, base: cfg.retryBase, s: seed.ForkNamed("retry-jitter")}
	}

	if err := waitReady(client, cfg.url, cfg.waitReady); err != nil {
		fmt.Fprintln(os.Stderr, "df3load:", err)
		os.Exit(1)
	}

	start := wallNow()
	if cfg.rate > 0 {
		fmt.Printf("df3load: open loop %g req/s (%s profile) against %s for %v\n",
			cfg.rate, cfg.profile, cfg.url, cfg.duration)
		runOpen(&cfg, client, newGenerator(&cfg, seed), t, rt)
	} else {
		fmt.Printf("df3load: closed loop %d conns (%s profile) against %s for %v\n",
			cfg.conns, cfg.profile, cfg.url, cfg.duration)
		runClosed(&cfg, client, seed, t, rt)
	}
	elapsed := wallNow().Sub(start)

	scraped, err := scrape(client, cfg.url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "df3load: scrape:", err)
		scraped = map[string]float64{}
	}
	out := os.Stdout
	if cfg.report != "" {
		f, err := os.Create(cfg.report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "df3load:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	writeReport(out, &cfg, elapsed, t, scraped)
	if cfg.summaryJSON != "" {
		sink := os.Stdout
		if cfg.summaryJSON != "-" {
			f, err := os.Create(cfg.summaryJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "df3load:", err)
				os.Exit(1)
			}
			defer f.Close()
			sink = f
		}
		if err := writeSummaryJSON(sink, buildSummary(&cfg, elapsed, t, scraped)); err != nil {
			fmt.Fprintln(os.Stderr, "df3load: summary:", err)
			os.Exit(1)
		}
	}
}
