package main

import "math"

// profileScale is the rate multiplier at normalized elapsed time u ∈ [0,1].
// It shapes the open loop's arrival process (and the closed loop's pacing
// gaps) into the traffic patterns the serving plane must survive:
//
//   - steady: constant rate, the calibration baseline.
//   - ramp: linear 0→2×, crossing nominal halfway — finds the knee.
//   - spike: nominal with a 5× burst over the middle tenth — the
//     admission-control stressor; shedding is expected here.
//   - diurnal: a sinusoidal day compressed into the run, trough at the
//     start, peak in the middle — the §II heating-demand rhythm.
func profileScale(profile string, u float64) float64 {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	switch profile {
	case "ramp":
		return 2 * u
	case "spike":
		if u >= 0.45 && u < 0.55 {
			return 5
		}
		return 1
	case "diurnal":
		return 1 - 0.8*math.Cos(2*math.Pi*u)
	default: // steady
		return 1
	}
}
