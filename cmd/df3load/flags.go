package main

import (
	"fmt"
	"net/url"
	"time"

	"df3/internal/cliutil"
)

// loadConfig is the parsed flag set, separated from main so the validation
// rules are unit-testable.
type loadConfig struct {
	url      string
	rate     float64 // open-loop arrivals per second (exclusive with conns)
	conns    int     // closed-loop worker count (exclusive with rate)
	duration time.Duration
	timeout  time.Duration

	seed    uint64
	tenants int
	zipfS   float64
	profile string
	dccFrac float64
	workS   float64
	deadS   float64
	frames  int

	report      string // write the SLO report here instead of stdout
	summaryJSON string // also write a machine-readable summary ("-" = stdout)

	// Retry and readiness: the chaos harness drives load across a df3d
	// restart, so transient refusals must not poison the outcome table.
	retry     bool          // re-issue 429/503/connection-refused with backoff
	retryMax  int           // attempts per request beyond the first
	retryBase time.Duration // first backoff step (doubles, jittered, capped)
	waitReady time.Duration // poll /readyz this long before opening load (0 = don't)
}

// Retry knob defaults, doubled as "unset" sentinels: changing them
// without -retry is a configuration error, not a silent no-op.
const (
	defaultRetryMax  = 8
	defaultRetryBase = 50 * time.Millisecond
)

var validProfiles = map[string]bool{
	"steady": true, "ramp": true, "spike": true, "diurnal": true,
}

// validate rejects invalid values and mutually exclusive combinations. The
// open/closed-loop selectors are the classic load-generator dichotomy:
// -rate fixes the arrival process regardless of response times, -conns
// fixes concurrency and lets throughput float. Exactly one must be chosen.
func (c loadConfig) validate() error {
	u, err := url.Parse(c.url)
	if err != nil {
		return fmt.Errorf("-url %q: %w", c.url, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("-url %q: need an http(s) URL", c.url)
	}
	if u.Host == "" {
		return fmt.Errorf("-url %q: missing host", c.url)
	}
	switch {
	case c.rate > 0 && c.conns > 0:
		return fmt.Errorf("-rate and -conns are mutually exclusive: open loop (fixed arrival rate) or closed loop (fixed concurrency), not both")
	case c.rate <= 0 && c.conns <= 0:
		return fmt.Errorf("pick a loop mode: -rate R (open loop) or -conns N (closed loop)")
	case c.rate < 0:
		return fmt.Errorf("-rate %v must be positive", c.rate)
	case c.conns < 0:
		return fmt.Errorf("-conns %d must be positive", c.conns)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration %v: need a positive run length", c.duration)
	}
	if c.timeout <= 0 {
		return fmt.Errorf("-timeout %v: need a positive request timeout", c.timeout)
	}
	if c.tenants < 1 {
		return fmt.Errorf("-tenants %d: need at least one tenant", c.tenants)
	}
	if c.zipfS <= 0 {
		return fmt.Errorf("-zipf %v: the Zipf exponent must be positive", c.zipfS)
	}
	if !validProfiles[c.profile] {
		return fmt.Errorf("unknown -profile %q (steady|ramp|spike|diurnal)", c.profile)
	}
	if c.dccFrac < 0 || c.dccFrac > 1 {
		return fmt.Errorf("-dcc-frac %v must be in [0,1]", c.dccFrac)
	}
	if c.workS <= 0 {
		return fmt.Errorf("-work %v: need positive mean request work", c.workS)
	}
	if c.deadS < 0 {
		return fmt.Errorf("-deadline %v must be non-negative", c.deadS)
	}
	if c.frames < 1 {
		return fmt.Errorf("-frames %d: a batch job needs at least one frame", c.frames)
	}
	if c.report != "" {
		if err := cliutil.CheckWritableFile(c.report); err != nil {
			return fmt.Errorf("-report: %w", err)
		}
	}
	if c.summaryJSON != "" && c.summaryJSON != "-" {
		if err := cliutil.CheckWritableFile(c.summaryJSON); err != nil {
			return fmt.Errorf("-summary-json: %w", err)
		}
	}
	if !c.retry {
		if c.retryMax != defaultRetryMax && c.retryMax != 0 {
			return fmt.Errorf("-retry-max requires -retry")
		}
		if c.retryBase != defaultRetryBase && c.retryBase != 0 {
			return fmt.Errorf("-retry-base requires -retry")
		}
	} else {
		if c.retryMax < 1 {
			return fmt.Errorf("-retry-max %d: need at least one retry attempt", c.retryMax)
		}
		if c.retryBase <= 0 {
			return fmt.Errorf("-retry-base %v: need a positive backoff step", c.retryBase)
		}
	}
	if c.waitReady < 0 {
		return fmt.Errorf("-wait-ready %v must be non-negative", c.waitReady)
	}
	return nil
}
