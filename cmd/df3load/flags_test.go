package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validOpen() loadConfig {
	return loadConfig{
		url: "http://localhost:8080", rate: 100,
		duration: 10 * time.Second, timeout: time.Minute,
		tenants: 100, zipfS: 1.2, profile: "steady",
		workS: 0.05, deadS: 1, frames: 8,
	}
}

func TestLoadFlagValidation(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name    string
		mutate  func(*loadConfig)
		wantErr string // substring; "" = valid
	}{
		{"valid open loop", func(c *loadConfig) {}, ""},
		{"valid closed loop", func(c *loadConfig) { c.rate = 0; c.conns = 16 }, ""},
		{"valid with report", func(c *loadConfig) {
			c.report = filepath.Join(tmp, "slo.txt")
		}, ""},
		{"valid every profile", func(c *loadConfig) { c.profile = "diurnal" }, ""},
		{"rate and conns together", func(c *loadConfig) { c.conns = 16 }, "mutually exclusive"},
		{"neither rate nor conns", func(c *loadConfig) { c.rate = 0 }, "loop mode"},
		{"bad url scheme", func(c *loadConfig) { c.url = "ftp://host" }, "http(s)"},
		{"url without host", func(c *loadConfig) { c.url = "http://" }, "missing host"},
		{"unparseable url", func(c *loadConfig) { c.url = "http://bad host:x" }, "-url"},
		{"zero duration", func(c *loadConfig) { c.duration = 0 }, "-duration"},
		{"zero timeout", func(c *loadConfig) { c.timeout = 0 }, "-timeout"},
		{"zero tenants", func(c *loadConfig) { c.tenants = 0 }, "-tenants"},
		{"zero zipf exponent", func(c *loadConfig) { c.zipfS = 0 }, "-zipf"},
		{"unknown profile", func(c *loadConfig) { c.profile = "sawtooth" }, "-profile"},
		{"dcc fraction above one", func(c *loadConfig) { c.dccFrac = 1.5 }, "-dcc-frac"},
		{"negative dcc fraction", func(c *loadConfig) { c.dccFrac = -0.1 }, "-dcc-frac"},
		{"zero work", func(c *loadConfig) { c.workS = 0 }, "-work"},
		{"negative deadline", func(c *loadConfig) { c.deadS = -1 }, "-deadline"},
		{"zero frames", func(c *loadConfig) { c.frames = 0 }, "-frames"},
		{"unwritable report path", func(c *loadConfig) {
			c.report = filepath.Join(tmp, "no/such/dir/slo.txt")
		}, "-report"},
		{"valid retry", func(c *loadConfig) {
			c.retry = true
			c.retryMax = 4
			c.retryBase = 10 * time.Millisecond
		}, ""},
		{"valid retry with defaults", func(c *loadConfig) {
			c.retry = true
			c.retryMax = defaultRetryMax
			c.retryBase = defaultRetryBase
		}, ""},
		{"valid wait-ready", func(c *loadConfig) { c.waitReady = time.Minute }, ""},
		{"retry-max without retry", func(c *loadConfig) {
			c.retryMax = 3
		}, "-retry-max requires -retry"},
		{"retry-base without retry", func(c *loadConfig) {
			c.retryBase = time.Second
		}, "-retry-base requires -retry"},
		{"retry with zero attempts", func(c *loadConfig) {
			c.retry = true
			c.retryBase = defaultRetryBase
		}, "-retry-max"},
		{"retry with negative base", func(c *loadConfig) {
			c.retry = true
			c.retryMax = 3
			c.retryBase = -time.Millisecond
		}, "-retry-base"},
		{"negative wait-ready", func(c *loadConfig) {
			c.waitReady = -time.Second
		}, "-wait-ready"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validOpen()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error mentioning %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
