package main

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"df3/internal/rng"
)

func TestBackoffBounds(t *testing.T) {
	rt := &retrier{max: 8, base: 50 * time.Millisecond, s: rng.New(1)}
	for attempt := 0; attempt < 64; attempt++ {
		ceil := retryCap
		if attempt < 20 {
			if step := rt.base << attempt; step < retryCap {
				ceil = step
			}
		}
		for i := 0; i < 100; i++ {
			d := rt.backoff(attempt)
			if d < ceil/2 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
	}
}

func TestRetryable(t *testing.T) {
	cases := []struct {
		name string
		resp *http.Response
		err  error
		want bool
	}{
		{"transport error", nil, errors.New("connection refused"), true},
		{"429 shed", &http.Response{StatusCode: http.StatusTooManyRequests}, nil, true},
		{"503 recovering", &http.Response{StatusCode: http.StatusServiceUnavailable}, nil, true},
		{"200 served", &http.Response{StatusCode: http.StatusOK}, nil, false},
		{"400 bad request", &http.Response{StatusCode: http.StatusBadRequest}, nil, false},
		{"500 server bug", &http.Response{StatusCode: http.StatusInternalServerError}, nil, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.resp, tc.err); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}
