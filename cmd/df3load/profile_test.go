package main

import (
	"math"
	"testing"
)

func TestProfileScale(t *testing.T) {
	cases := []struct {
		profile string
		u       float64
		want    float64
	}{
		{"steady", 0, 1}, {"steady", 0.5, 1}, {"steady", 1, 1},
		{"ramp", 0, 0}, {"ramp", 0.5, 1}, {"ramp", 1, 2},
		{"spike", 0.2, 1}, {"spike", 0.45, 5}, {"spike", 0.5, 5}, {"spike", 0.55, 1},
		{"diurnal", 0, 0.2}, {"diurnal", 0.5, 1.8}, {"diurnal", 1, 0.2},
		// Out-of-range u clamps.
		{"ramp", -1, 0}, {"ramp", 2, 2},
	}
	for _, tc := range cases {
		got := profileScale(tc.profile, tc.u)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("profileScale(%q, %v) = %v, want %v", tc.profile, tc.u, got, tc.want)
		}
	}
}

// TestProfileScaleNonNegative guards the generator's invariant: a negative
// multiplier would make the open loop's inter-arrival draw panic.
func TestProfileScaleNonNegative(t *testing.T) {
	for _, p := range []string{"steady", "ramp", "spike", "diurnal"} {
		for u := -0.5; u <= 1.5; u += 0.01 {
			if s := profileScale(p, u); s < 0 {
				t.Fatalf("profileScale(%q, %v) = %v < 0", p, u, s)
			}
		}
	}
}
