package main

import (
	"fmt"
	"strings"
	"time"

	"df3/internal/city"
	"df3/internal/cliutil"
)

// coordConfig is the parsed flag set, separated from main so the
// validation rules are unit-testable.
type coordConfig struct {
	workers string // comma-separated worker addresses; empty = in-process mode
	nodes   int    // in-process partitions when no workers are given
	shards  int    // shard workers per node

	// Scenario (the sealed recipe every node builds).
	seed                     uint64
	cities, buildings, rooms int
	boilers                  int
	days                     float64
	edgeRate, dccRate        float64
	intercity                float64

	timeout     time.Duration
	metricsPath string
	tracePath   string
}

// workerList splits -workers into dial targets.
func (c coordConfig) workerList() []string {
	if strings.TrimSpace(c.workers) == "" {
		return nil
	}
	var out []string
	for _, w := range strings.Split(c.workers, ",") {
		out = append(out, strings.TrimSpace(w))
	}
	return out
}

// nodeCount is the number of partitions the run is split into: one per
// worker, or -nodes in in-process mode.
func (c coordConfig) nodeCount() int {
	if ws := c.workerList(); len(ws) > 0 {
		return len(ws)
	}
	return c.nodes
}

// spec seals the scenario flags into the recipe every node builds from.
func (c coordConfig) spec() city.Spec {
	return city.Spec{
		Seed: c.seed, Cities: c.cities, Buildings: c.buildings,
		Rooms: c.rooms, Boilers: c.boilers, Days: c.days,
		EdgeRate: c.edgeRate, DCCRate: c.dccRate, InterCity: c.intercity,
	}
}

// validate rejects invalid values before anything dials or builds, so a
// fleet of workers is never assigned a scenario the run would die on.
func (c coordConfig) validate() error {
	if err := c.spec().Validate(); err != nil {
		return err
	}
	ws := c.workerList()
	for _, w := range ws {
		if w == "" {
			return fmt.Errorf("-workers has an empty address")
		}
		if _, err := cliutil.CheckListenAddr(w); err != nil {
			return fmt.Errorf("-workers: %w", err)
		}
	}
	if len(ws) == 0 && c.nodes < 1 {
		return fmt.Errorf("-nodes %d: need at least one partition", c.nodes)
	}
	nodes := c.nodeCount()
	if nodes > c.cities {
		return fmt.Errorf("%d nodes for %d cities: every node needs at least one city", nodes, c.cities)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one shard worker per node", c.shards)
	}
	if c.timeout <= 0 {
		return fmt.Errorf("-timeout %v: need a positive wall bound", c.timeout)
	}
	if c.metricsPath != "" {
		if err := cliutil.CheckWritableFile(c.metricsPath); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
	}
	if c.tracePath != "" {
		if len(ws) == 0 {
			return fmt.Errorf("-trace gathers worker trace chunks; it needs -workers (and df3node -trace)")
		}
		if err := cliutil.CheckWritableFile(c.tracePath); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	return nil
}

// dialTarget splits a worker address into the (network, addr) pair for
// wire.Dial.
func dialTarget(w string) (network, addr string) {
	if path, ok := strings.CutPrefix(w, "unix:"); ok {
		return "unix", path
	}
	return "tcp", w
}
