// Command df3coord coordinates a multi-node df3 federation run: it
// seals the scenario into a build recipe, partitions the cities into
// contiguous blocks, assigns one block to each df3node worker over the
// wire protocol, and drives the same conservative window barrier the
// in-process shard kernel uses — global min-next-event plus lookahead —
// routing cross-partition mailbox messages between workers in global
// (at, src, seq) order. The merged result (per-city records, summary,
// federation checksum) is byte-identical to a serial run of the same
// recipe; that equivalence is the point, and CI asserts it.
//
//	df3coord -cities 8 -days 1 -workers 127.0.0.1:9401,127.0.0.1:9402
//	df3coord -cities 8 -days 1 -nodes 2            # same run, in process
//
// Without -workers the coordinator runs its partitions in-process over
// the same Sync loop — the reference mode whose output a distributed run
// must reproduce exactly. A worker failure (died, wedged past -timeout,
// protocol error) fails the whole run fast with a non-zero exit; there
// is no partial result worth printing once determinism is lost.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"df3/internal/city"
	"df3/internal/report"
	"df3/internal/shard"
	"df3/internal/sim"
	"df3/internal/wire"
)

// checksumLine is the final-state fingerprint df3coord prints; CI diffs
// it between serial and multi-process runs, the same contract as df3d's
// checksum line.
const checksumLine = "# df3coord federation checksum: 0x%016x\n"

func main() {
	var cfg coordConfig
	flag.StringVar(&cfg.workers, "workers", "", "comma-separated df3node addresses (host:port or unix:/path); empty runs in-process")
	flag.IntVar(&cfg.nodes, "nodes", 1, "in-process partitions when no -workers are given")
	flag.IntVar(&cfg.shards, "shards", 1, "shard workers per node")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.IntVar(&cfg.cities, "cities", 8, "federation size")
	flag.IntVar(&cfg.buildings, "buildings", 4, "buildings per city")
	flag.IntVar(&cfg.rooms, "rooms", 6, "rooms per building")
	flag.IntVar(&cfg.boilers, "boilers", 0, "boiler-plant buildings per city")
	flag.Float64Var(&cfg.days, "days", 1, "simulated days of traffic")
	flag.Float64Var(&cfg.edgeRate, "edge", 1, "edge request rate scale (0 disables)")
	flag.Float64Var(&cfg.dccRate, "dcc", 6, "batch jobs per hour per city (0 disables)")
	flag.Float64Var(&cfg.intercity, "intercity", 2, "inter-city offload jobs per hour per city (0 disables)")
	flag.DurationVar(&cfg.timeout, "timeout", wire.DefaultTimeout, "wall bound on each worker round trip")
	flag.StringVar(&cfg.metricsPath, "metrics", "", "write gathered worker metrics (Prometheus text) to this file")
	flag.StringVar(&cfg.tracePath, "trace", "", "write gathered worker trace chunks (JSONL) to this file")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "df3coord:", err)
		os.Exit(2)
	}

	spec := cfg.spec()
	nodes := cfg.nodeCount()
	assign := shard.PartitionContiguous(spec.Cities, nodes, nil)
	owned := make([][]int, nodes)
	for ci, p := range assign {
		owned[p] = append(owned[p], ci)
	}

	var err error
	if len(cfg.workerList()) > 0 {
		err = runRemote(cfg, spec, owned)
	} else {
		err = runSerial(cfg, spec, owned)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "df3coord:", err)
		os.Exit(1)
	}
}

// runRemote drives df3node workers over the wire protocol.
func runRemote(cfg coordConfig, spec city.Spec, owned [][]int) error {
	recipe := spec.Marshal()
	workers := cfg.workerList()
	clients := make([]*wire.Client, len(workers))
	parts := make([]shard.Part, len(workers))
	var lookahead sim.Time
	for i, w := range workers {
		network, addr := dialTarget(w)
		cl, err := wire.Dial(network, addr, cfg.timeout)
		if err != nil {
			return err
		}
		defer cl.Close()
		r, err := cl.Assign(wire.Assign{Recipe: recipe, Shards: cfg.shards, Owned: owned[i]})
		if err != nil {
			return err
		}
		if i == 0 {
			lookahead = r.Lookahead
		} else if r.Lookahead != lookahead {
			return fmt.Errorf("worker %s lookahead %v, worker %s reported %v (build skew)",
				w, r.Lookahead, workers[0], lookahead)
		}
		fmt.Fprintf(os.Stderr, "df3coord: worker %s owns cities %d..%d\n",
			w, owned[i][0], owned[i][len(owned[i])-1])
		clients[i] = cl
		parts[i] = cl
	}

	states, sy, err := drive(spec, lookahead, parts, func(p int) ([]city.CityState, error) {
		return clients[p].States()
	})
	if err != nil {
		return err
	}
	report_(os.Stdout, cfg, spec, states, sy)

	if cfg.metricsPath != "" {
		if err := gatherChunks(cfg.metricsPath, workers, func(p int) ([]byte, error) {
			return clients[p].Metrics()
		}); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if cfg.tracePath != "" {
		if err := gatherChunks(cfg.tracePath, workers, func(p int) ([]byte, error) {
			return clients[p].Trace()
		}); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	for i, cl := range clients {
		if err := cl.Bye(); err != nil {
			return fmt.Errorf("worker %s: %w", workers[i], err)
		}
	}
	return nil
}

// runSerial is the in-process reference mode: the identical partition
// and Sync loop, with each "worker" a restricted federation in this
// process. Its stdout is what a distributed run must reproduce
// byte-for-byte.
func runSerial(cfg coordConfig, spec city.Spec, owned [][]int) error {
	feds := make([]*city.Federation, len(owned))
	parts := make([]shard.Part, len(owned))
	for p := range owned {
		f := spec.Build(cfg.shards)
		f.Restrict(owned[p])
		feds[p] = f
		parts[p] = f.Kernel
	}
	states, sy, err := drive(spec, feds[0].Backbone.MinDelay(), parts, func(p int) ([]city.CityState, error) {
		out := make([]city.CityState, 0, len(owned[p]))
		for _, ci := range owned[p] {
			out = append(out, feds[p].CityState(ci))
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	report_(os.Stdout, cfg, spec, states, sy)

	if cfg.metricsPath != "" {
		if err := gatherChunks(cfg.metricsPath, make([]string, len(feds)), func(p int) ([]byte, error) {
			var buf []byte
			w := writerFunc(func(b []byte) { buf = append(buf, b...) })
			if err := feds[p].Observability().WritePrometheus(w); err != nil {
				return nil, err
			}
			return buf, nil
		}); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	return nil
}

// drive runs the window loop over the partitions and gathers every
// partition's per-city records back into city order.
func drive(spec city.Spec, lookahead sim.Time, parts []shard.Part, statesOf func(p int) ([]city.CityState, error)) ([]city.CityState, *shard.Sync, error) {
	sy, err := shard.NewSync(lookahead, parts)
	if err != nil {
		return nil, nil, err
	}
	start := wallNow()
	if err := sy.Run(spec.Until()); err != nil {
		return nil, nil, err
	}
	wall := wallNow().Sub(start).Seconds()
	st := sy.Stats()
	fmt.Fprintf(os.Stderr, "df3coord: %d events in %.2fs wall (%.0f events/s, %d windows, %d boundary msgs)\n",
		st.TotalEvents, wall, float64(st.TotalEvents)/wall, st.Windows, sy.Boundary())

	states := make([]city.CityState, spec.Cities)
	seen := make([]bool, spec.Cities)
	for p := range parts {
		got, err := statesOf(p)
		if err != nil {
			return nil, nil, err
		}
		for _, cs := range got {
			if cs.City < 0 || cs.City >= spec.Cities || seen[cs.City] {
				return nil, nil, fmt.Errorf("partition %d reported city %d twice or out of range", p, cs.City)
			}
			states[cs.City] = cs
			seen[cs.City] = true
		}
	}
	for ci, ok := range seen {
		if !ok {
			return nil, nil, fmt.Errorf("no partition reported city %d", ci)
		}
	}
	return states, sy, nil
}

// report_ renders the merged result exactly as a serial run would: the
// federation table from the reassembled per-city records, the kernel
// table from the merged window stats, and the checksum line CI diffs.
func report_(w *os.File, cfg coordConfig, spec city.Spec, states []city.CityState, sy *shard.Sync) {
	fmt.Fprintf(w, "df3coord: federation of %d cities (%d buildings × %d rooms each) over %d nodes × %d shards, %.2f days\n",
		spec.Cities, spec.Buildings, spec.Rooms, cfg.nodeCount(), cfg.shards, spec.Days)

	s := city.SummarizeStates(states)
	st := sy.Stats()
	t := report.NewTable("federation", "metric", "value")
	t.Row("cities", s.Cities)
	t.Row("edge submitted", s.EdgeSubmitted)
	t.Row("edge served", s.EdgeServed)
	t.Row("dcc jobs done", s.JobsDone)
	t.Row("core-hours", s.WorkDone/3600)
	t.Row("jobs exported", s.Exported)
	t.Row("jobs imported", s.Imported)
	t.Row("events fired", int64(s.EventsFired))
	t.Write(w)

	k := report.NewTable("multi-node kernel", "metric", "value")
	k.Row("nodes", cfg.nodeCount())
	k.Row("shards per node", cfg.shards)
	k.Row("sync windows", st.Windows)
	k.Row("cross-LP messages", st.Sent)
	k.Row("cross-node messages", sy.Boundary())
	k.Row("critical-path speedup", st.Speedup())
	k.Write(w)

	fmt.Fprintf(w, checksumLine, city.ChecksumStates(states))
}

// gatherChunks writes one labeled chunk per worker to path.
func gatherChunks(path string, workers []string, chunk func(p int) ([]byte, error)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for p := range workers {
		label := workers[p]
		if label == "" {
			label = fmt.Sprintf("partition %d", p)
		}
		b, err := chunk(p)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(f, "# worker %d (%s)\n", p, label); err != nil {
			return err
		}
		if _, err := f.Write(b); err != nil {
			return err
		}
	}
	return f.Close()
}

// writerFunc adapts a byte-sink closure to io.Writer.
type writerFunc func([]byte)

func (fn writerFunc) Write(p []byte) (int, error) {
	fn(p)
	return len(p), nil
}

// wallNow is df3coord's one wall-clock read, for throughput reporting on
// stderr only — stdout stays a pure function of the scenario.
func wallNow() time.Time {
	return time.Now() //df3:allow(detrand) coordinator wall timing is reporting-only; it never feeds the sim
}
