package main

import (
	"strings"
	"testing"
	"time"
)

func validConfig() coordConfig {
	return coordConfig{
		nodes: 2, shards: 2, cities: 8, buildings: 4, rooms: 6,
		days: 1, edgeRate: 1, dccRate: 6, intercity: 2,
		timeout: time.Minute,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*coordConfig)
		ok     bool
	}{
		{"default in-process", func(c *coordConfig) {}, true},
		{"remote workers", func(c *coordConfig) { c.workers = "127.0.0.1:9401, 127.0.0.1:9402" }, true},
		{"unix workers", func(c *coordConfig) { c.workers = "unix:/tmp/df3-0.sock" }, true},
		{"zero cities", func(c *coordConfig) { c.cities = 0 }, false},
		{"zero nodes", func(c *coordConfig) { c.nodes = 0 }, false},
		{"more nodes than cities", func(c *coordConfig) { c.nodes = 9 }, false},
		{"more workers than cities", func(c *coordConfig) {
			c.cities = 1
			c.workers = "127.0.0.1:9401,127.0.0.1:9402"
		}, false},
		{"zero shards", func(c *coordConfig) { c.shards = 0 }, false},
		{"negative days", func(c *coordConfig) { c.days = -1 }, false},
		{"negative rate", func(c *coordConfig) { c.intercity = -1 }, false},
		{"zero timeout", func(c *coordConfig) { c.timeout = 0 }, false},
		{"empty worker entry", func(c *coordConfig) { c.workers = "127.0.0.1:9401,," }, false},
		{"bad worker port", func(c *coordConfig) { c.workers = "127.0.0.1:99999" }, false},
		{"trace without workers", func(c *coordConfig) { c.tracePath = "/tmp/t.jsonl" }, false},
		{"metrics to missing dir", func(c *coordConfig) { c.metricsPath = "/nope/missing/m.txt" }, false},
	}
	for _, c := range cases {
		cfg := validConfig()
		c.mutate(&cfg)
		err := cfg.validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestWorkerListAndNodes(t *testing.T) {
	cfg := validConfig()
	cfg.workers = " 127.0.0.1:9401 ,unix:/tmp/w.sock "
	ws := cfg.workerList()
	if len(ws) != 2 || ws[0] != "127.0.0.1:9401" || ws[1] != "unix:/tmp/w.sock" {
		t.Errorf("workerList = %v", ws)
	}
	if cfg.nodeCount() != 2 {
		t.Errorf("nodeCount = %d, want 2 (one per worker)", cfg.nodeCount())
	}
	cfg.workers = ""
	if cfg.nodeCount() != cfg.nodes {
		t.Errorf("nodeCount = %d, want -nodes %d", cfg.nodeCount(), cfg.nodes)
	}
}

func TestDialTarget(t *testing.T) {
	if n, a := dialTarget("127.0.0.1:9401"); n != "tcp" || a != "127.0.0.1:9401" {
		t.Errorf("tcp target = %s %s", n, a)
	}
	if n, a := dialTarget("unix:/tmp/w.sock"); n != "unix" || a != "/tmp/w.sock" {
		t.Errorf("unix target = %s %s", n, a)
	}
}

func TestSpecSealsScenario(t *testing.T) {
	cfg := validConfig()
	spec := cfg.spec()
	if spec.Cities != cfg.cities || spec.Days != cfg.days || spec.InterCity != cfg.intercity {
		t.Errorf("spec %+v does not mirror config %+v", spec, cfg)
	}
	if !strings.Contains(string(spec.Marshal()), `"cities":8`) {
		t.Errorf("recipe %s", spec.Marshal())
	}
}
