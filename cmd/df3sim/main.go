// Command df3sim runs one DF3 city scenario and prints a full platform
// report: comfort, energy, PUE, per-flow service metrics and the seasonal
// capacity trace.
//
//	df3sim -buildings 6 -rooms 8 -days 7 -edge 1 -dcc 1.5
//	df3sim -boilers 2 -days 30 -climate stockholm -start jan
//	df3sim -arch dedicated -offload preempt -csv capacity.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"df3/internal/city"
	"df3/internal/core"
	"df3/internal/offload"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/weather"
)

func main() {
	var (
		buildings = flag.Int("buildings", 6, "number of buildings (one cluster each)")
		rooms     = flag.Int("rooms", 8, "rooms per building")
		boilers   = flag.Int("boilers", 0, "buildings heated by a digital boiler instead of Q.rads")
		days      = flag.Float64("days", 7, "simulated days")
		edgeRate  = flag.Float64("edge", 1, "edge workload scale (0 disables)")
		dccRate   = flag.Float64("dcc", 1.5, "DCC jobs per hour (0 disables)")
		seed      = flag.Uint64("seed", 1, "random seed")
		climate   = flag.String("climate", "paris", "climate: paris | stockholm | seville")
		start     = flag.String("start", "nov", "calendar start: jan | nov | jul")
		arch      = flag.String("arch", "shared", "architecture: shared | dedicated")
		policy    = flag.String("offload", "smart", "offload policy: smart|reject|delay|preempt|vertical|horizontal")
		offices   = flag.Bool("offices", false, "office schedules instead of homes")
		csvPath   = flag.String("csv", "", "write the capacity series to this CSV file")
		mtbf      = flag.Float64("mtbf", 0, "mean days between machine failures (0 disables fault injection)")
		tracePath = flag.String("trace", "", "write per-request trace events to this CSV file")
		spansPath = flag.String("spans", "", "record causal spans across the whole stack and write them as JSONL (summarise with df3trace spans)")
	)
	flag.Parse()

	cfg := city.DefaultConfig()
	cfg.Seed = *seed
	cfg.Buildings = *buildings
	cfg.RoomsPerBuilding = *rooms
	cfg.BoilerBuildings = *boilers
	cfg.Offices = *offices

	switch *climate {
	case "paris":
		cfg.Climate = weather.Paris
	case "stockholm":
		cfg.Climate = weather.Stockholm
	case "seville":
		cfg.Climate = weather.Seville
	default:
		fatal("unknown climate %q", *climate)
	}
	switch *start {
	case "jan":
		cfg.Calendar = sim.JanuaryStart
	case "nov":
		cfg.Calendar = sim.NovemberStart
	case "jul":
		cfg.Calendar = sim.Calendar{StartDayOfYear: 6 * 365.0 / 12}
	default:
		fatal("unknown start %q", *start)
	}
	switch *arch {
	case "shared":
		cfg.Middleware.Arch = core.Shared
	case "dedicated":
		cfg.Middleware.Arch = core.Dedicated
		cfg.Middleware.DedicatedEdgeWorkers = 1
	default:
		fatal("unknown arch %q", *arch)
	}
	policies := map[string]offload.Policy{
		"smart":      offload.Smart{},
		"reject":     offload.RejectPolicy{},
		"delay":      offload.DelayPolicy{},
		"preempt":    offload.PreemptPolicy{},
		"vertical":   offload.VerticalPolicy{},
		"horizontal": offload.HorizontalPolicy{},
	}
	p, ok := policies[*policy]
	if !ok {
		fatal("unknown offload policy %q", *policy)
	}
	cfg.Middleware.Offload = p

	if *mtbf > 0 {
		cfg.MTBF = sim.Time(*mtbf) * sim.Day
	}

	horizon := sim.Time(*days) * sim.Day
	c := city.Build(cfg)
	var rec *trace.Recorder
	if *tracePath != "" || *spansPath != "" {
		rec = trace.NewRecorder(0)
		if *spansPath != "" {
			c.EnableTracing(rec)
		} else {
			c.MW.Tracer = rec
		}
	}
	if *edgeRate > 0 {
		c.StartEdgeTraffic(horizon, *edgeRate)
	}
	if *dccRate > 0 {
		c.StartDCCTraffic(horizon, *dccRate)
	}
	fmt.Printf("df3sim: %d buildings × %d rooms (%d boiler plants), %s/%s, %s arch, %s offload, %.0f days\n",
		*buildings, *rooms, *boilers, *climate, *start, *arch, *policy, *days)
	c.Run(horizon + 6*sim.Hour)

	printReport(c)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal("csv: %v", err)
		}
		defer f.Close()
		t := report.NewTable("", "t_seconds", "capacity_cores")
		for _, pt := range c.CapacitySeries.Points() {
			t.Row(pt.T, pt.V)
		}
		if err := t.CSV(f); err != nil {
			fatal("csv: %v", err)
		}
		fmt.Printf("capacity series written to %s\n", *csvPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("trace: %v", err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Printf("%d trace events written to %s\n", rec.Len(), *tracePath)
	}
	if *spansPath != "" {
		f, err := os.Create(*spansPath)
		if err != nil {
			fatal("spans: %v", err)
		}
		defer f.Close()
		if err := rec.WriteSpansJSONL(f); err != nil {
			fatal("spans: %v", err)
		}
		fmt.Printf("%d spans written to %s (df3trace spans %s)\n",
			len(rec.Spans()), *spansPath, *spansPath)
	}
}

func printReport(c *city.City) {
	now := c.Engine.Now()

	comfort := report.NewTable("heating flow", "metric", "value")
	inBand, n := 0.0, 0
	for _, r := range c.Rooms() {
		inBand += r.Comfort.InBandFraction()
		n++
	}
	comfort.Row("rooms", n)
	comfort.Row("occupied in-band fraction", inBand/float64(n))
	months, means := c.MonthlyComfort()
	for i, m := range months {
		comfort.Row(fmt.Sprintf("month %d mean °C", m), means[i])
	}
	comfort.Row("backup resistor kWh", c.ResistorEnergy().KWh())
	comfort.Row("boiler waste kWh", c.WastedBoilerHeat().KWh())
	comfort.Write(os.Stdout)

	energy := report.NewTable("fleet energy", "metric", "value")
	it, fac, heat := c.Fleet.Energy(now)
	energy.Row("IT energy kWh", it.KWh())
	energy.Row("facility energy kWh", fac.KWh())
	energy.Row("useful heat kWh", heat.KWh())
	if it > 0 {
		energy.Row("PUE", float64(fac)/float64(it))
	}
	energy.Row("mean capacity (cores)", c.CapacitySeries.Mean())
	energy.Row("max capacity (cores)", c.Fleet.MaxCapacity())
	energy.Write(os.Stdout)

	edge := report.NewTable("edge flow", "metric", "value")
	e := &c.MW.Edge
	edge.Row("arrived", e.Arrived())
	edge.Row("served", e.Served.Value())
	edge.Row("miss rate", e.MissRate())
	edge.Row("mean latency ms", e.Latency.Mean()*1000)
	edge.Row("p99 latency ms", e.Latency.P99()*1000)
	edge.Row("preemptions", e.Preemptions.Value())
	edge.Row("horizontal offloads", e.Horizontal.Value())
	edge.Row("vertical offloads", e.Vertical.Value())
	edge.Write(os.Stdout)

	dcc := report.NewTable("dcc flow", "metric", "value")
	d := &c.MW.DCC
	dcc.Row("jobs done", d.JobsDone.Value())
	dcc.Row("tasks done", d.TasksDone.Value())
	dcc.Row("core-hours", d.WorkDone/3600)
	dcc.Row("mean job stretch", d.JobStretch.Mean())
	dcc.Row("throughput core-s/s", d.Throughput(now))
	dcc.Write(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "df3sim: "+format+"\n", args...)
	os.Exit(2)
}
