// Command df3sim runs one DF3 city scenario — or a sharded federation of
// them — and prints a full platform report: comfort, energy, PUE, per-flow
// service metrics and the seasonal capacity trace.
//
//	df3sim -buildings 6 -rooms 8 -days 7 -edge 1 -dcc 1.5
//	df3sim -boilers 2 -days 30 -climate stockholm -start jan
//	df3sim -arch dedicated -offload preempt -csv capacity.csv
//	df3sim -cities 20 -shards 4 -days 2 -intercity 2   # federation on the shard kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"df3/internal/city"
	"df3/internal/core"
	"df3/internal/offload"
	"df3/internal/report"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/weather"
)

func main() {
	var cfg simConfig
	flag.IntVar(&cfg.buildings, "buildings", 6, "number of buildings (one cluster each)")
	flag.IntVar(&cfg.rooms, "rooms", 8, "rooms per building")
	flag.IntVar(&cfg.boilers, "boilers", 0, "buildings heated by a digital boiler instead of Q.rads")
	flag.Float64Var(&cfg.days, "days", 7, "simulated days")
	flag.Float64Var(&cfg.edgeRate, "edge", 1, "edge workload scale (0 disables)")
	flag.Float64Var(&cfg.dccRate, "dcc", 1.5, "DCC jobs per hour (0 disables)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.StringVar(&cfg.climate, "climate", "paris", "climate: paris | stockholm | seville")
	flag.StringVar(&cfg.start, "start", "nov", "calendar start: jan | nov | jul")
	flag.StringVar(&cfg.arch, "arch", "shared", "architecture: shared | dedicated")
	flag.StringVar(&cfg.policy, "offload", "smart", "offload policy: smart|reject|delay|preempt|vertical|horizontal")
	offices := flag.Bool("offices", false, "office schedules instead of homes")
	flag.IntVar(&cfg.cities, "cities", 1, "federate this many copies of the city (federation mode when > 1)")
	flag.IntVar(&cfg.shards, "shards", 1, "parallel shard workers for federation mode (results identical at any count)")
	flag.Float64Var(&cfg.intercity, "intercity", 2, "federation: inter-city batch offload jobs per hour per city (0 disables)")
	flag.StringVar(&cfg.csvPath, "csv", "", "write the capacity series to this CSV file")
	flag.Float64Var(&cfg.mtbf, "mtbf", 0, "mean days between machine failures (0 disables fault injection)")
	flag.StringVar(&cfg.tracePath, "trace", "", "write per-request trace events to this CSV file")
	flag.StringVar(&cfg.spansPath, "spans", "", "record causal spans across the whole stack and write them as JSONL (summarise with df3trace spans)")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fatal("%v", err)
	}

	ccfg := city.DefaultConfig()
	ccfg.Seed = *seed
	ccfg.Buildings = cfg.buildings
	ccfg.RoomsPerBuilding = cfg.rooms
	ccfg.BoilerBuildings = cfg.boilers
	ccfg.Offices = *offices

	switch cfg.climate {
	case "paris":
		ccfg.Climate = weather.Paris
	case "stockholm":
		ccfg.Climate = weather.Stockholm
	case "seville":
		ccfg.Climate = weather.Seville
	}
	switch cfg.start {
	case "jan":
		ccfg.Calendar = sim.JanuaryStart
	case "nov":
		ccfg.Calendar = sim.NovemberStart
	case "jul":
		ccfg.Calendar = sim.Calendar{StartDayOfYear: 6 * 365.0 / 12}
	}
	switch cfg.arch {
	case "shared":
		ccfg.Middleware.Arch = core.Shared
	case "dedicated":
		ccfg.Middleware.Arch = core.Dedicated
		ccfg.Middleware.DedicatedEdgeWorkers = 1
	}
	ccfg.Middleware.Offload = map[string]offload.Policy{
		"smart":      offload.Smart{},
		"reject":     offload.RejectPolicy{},
		"delay":      offload.DelayPolicy{},
		"preempt":    offload.PreemptPolicy{},
		"vertical":   offload.VerticalPolicy{},
		"horizontal": offload.HorizontalPolicy{},
	}[cfg.policy]

	if cfg.mtbf > 0 {
		ccfg.MTBF = sim.Time(cfg.mtbf) * sim.Day
	}

	horizon := sim.Time(cfg.days) * sim.Day
	if cfg.cities > 1 {
		runFederation(cfg, *seed, ccfg, horizon)
		return
	}

	c := city.Build(ccfg)
	var rec *trace.Recorder
	if cfg.tracePath != "" || cfg.spansPath != "" {
		rec = trace.NewRecorder(0)
		if cfg.spansPath != "" {
			c.EnableTracing(rec)
		} else {
			c.MW.Tracer = rec
		}
	}
	if cfg.edgeRate > 0 {
		c.StartEdgeTraffic(horizon, cfg.edgeRate)
	}
	if cfg.dccRate > 0 {
		c.StartDCCTraffic(horizon, cfg.dccRate)
	}
	fmt.Printf("df3sim: %d buildings × %d rooms (%d boiler plants), %s/%s, %s arch, %s offload, %.0f days\n",
		cfg.buildings, cfg.rooms, cfg.boilers, cfg.climate, cfg.start, cfg.arch, cfg.policy, cfg.days)
	c.Run(horizon + 6*sim.Hour)

	printReport(c)

	if cfg.csvPath != "" {
		f, err := os.Create(cfg.csvPath)
		if err != nil {
			fatal("csv: %v", err)
		}
		defer f.Close()
		t := report.NewTable("", "t_seconds", "capacity_cores")
		for _, pt := range c.CapacitySeries.Points() {
			t.Row(pt.T, pt.V)
		}
		if err := t.CSV(f); err != nil {
			fatal("csv: %v", err)
		}
		fmt.Printf("capacity series written to %s\n", cfg.csvPath)
	}
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			fatal("trace: %v", err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Printf("%d trace events written to %s\n", rec.Len(), cfg.tracePath)
	}
	if cfg.spansPath != "" {
		writeSpans(rec, cfg.spansPath)
	}
}

// runFederation is df3sim's federation mode: cfg.cities copies of the city
// template on the sharded kernel, coupled by inter-city batch offload.
func runFederation(cfg simConfig, seed uint64, ccfg city.Config, horizon sim.Time) {
	f := city.BuildFederation(city.FederationConfig{
		Seed: seed, Cities: cfg.cities, Shards: cfg.shards, City: ccfg,
	})
	if cfg.spansPath != "" {
		f.EnableTracing(0)
	}
	if cfg.edgeRate > 0 {
		f.StartEdgeTraffic(horizon, cfg.edgeRate)
	}
	if cfg.dccRate > 0 {
		f.StartDCCTraffic(horizon, cfg.dccRate)
	}
	if cfg.intercity > 0 {
		f.StartInterCityDCC(horizon, cfg.intercity)
	}
	fmt.Printf("df3sim: federation of %d cities (%d buildings × %d rooms each) on %d shards, %.0f days\n",
		cfg.cities, cfg.buildings, cfg.rooms, cfg.shards, cfg.days)
	f.Run(horizon + 6*sim.Hour)

	s := f.Summarize()
	st := f.Kernel.Stats()
	t := report.NewTable("federation", "metric", "value")
	t.Row("cities", s.Cities)
	t.Row("edge submitted", s.EdgeSubmitted)
	t.Row("edge served", s.EdgeServed)
	t.Row("dcc jobs done", s.JobsDone)
	t.Row("core-hours", s.WorkDone/3600)
	t.Row("jobs exported", s.Exported)
	t.Row("jobs imported", s.Imported)
	t.Row("events fired", int64(s.EventsFired))
	t.Write(os.Stdout)

	k := report.NewTable("shard kernel", "metric", "value")
	k.Row("shards", cfg.shards)
	k.Row("sync windows", st.Windows)
	k.Row("cross-LP messages", st.Sent)
	k.Row("cross-shard messages", st.CrossShard)
	k.Row("critical-path speedup", st.Speedup())
	k.Write(os.Stdout)

	if links := f.Backbone.Links(); len(links) > 0 {
		b := report.NewTable("busiest backbone links", "src", "dst", "messages", "MB")
		for i, l := range links {
			if i == 10 {
				break
			}
			b.Row(l.SrcCity, l.DstCity, l.Messages, l.Bytes/1e6)
		}
		b.Write(os.Stdout)
	}

	if cfg.spansPath != "" {
		writeSpans(f.MergedTrace(), cfg.spansPath)
	}
}

// writeSpans dumps a recorder's spans as JSONL.
func writeSpans(rec *trace.Recorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal("spans: %v", err)
	}
	defer f.Close()
	if err := rec.WriteSpansJSONL(f); err != nil {
		fatal("spans: %v", err)
	}
	fmt.Printf("%d spans written to %s (df3trace spans %s)\n",
		len(rec.Spans()), path, path)
}

func printReport(c *city.City) {
	now := c.Engine.Now()

	comfort := report.NewTable("heating flow", "metric", "value")
	inBand, n := 0.0, 0
	for _, r := range c.Rooms() {
		inBand += r.Comfort.InBandFraction()
		n++
	}
	comfort.Row("rooms", n)
	comfort.Row("occupied in-band fraction", inBand/float64(n))
	months, means := c.MonthlyComfort()
	for i, m := range months {
		comfort.Row(fmt.Sprintf("month %d mean °C", m), means[i])
	}
	comfort.Row("backup resistor kWh", c.ResistorEnergy().KWh())
	comfort.Row("boiler waste kWh", c.WastedBoilerHeat().KWh())
	comfort.Write(os.Stdout)

	energy := report.NewTable("fleet energy", "metric", "value")
	it, fac, heat := c.Fleet.Energy(now)
	energy.Row("IT energy kWh", it.KWh())
	energy.Row("facility energy kWh", fac.KWh())
	energy.Row("useful heat kWh", heat.KWh())
	if it > 0 {
		energy.Row("PUE", float64(fac)/float64(it))
	}
	energy.Row("mean capacity (cores)", c.CapacitySeries.Mean())
	energy.Row("max capacity (cores)", c.Fleet.MaxCapacity())
	energy.Write(os.Stdout)

	edge := report.NewTable("edge flow", "metric", "value")
	e := &c.MW.Edge
	edge.Row("arrived", e.Arrived())
	edge.Row("served", e.Served.Value())
	edge.Row("miss rate", e.MissRate())
	edge.Row("mean latency ms", e.Latency.Mean()*1000)
	edge.Row("p99 latency ms", e.Latency.P99()*1000)
	edge.Row("preemptions", e.Preemptions.Value())
	edge.Row("horizontal offloads", e.Horizontal.Value())
	edge.Row("vertical offloads", e.Vertical.Value())
	edge.Write(os.Stdout)

	dcc := report.NewTable("dcc flow", "metric", "value")
	d := &c.MW.DCC
	dcc.Row("jobs done", d.JobsDone.Value())
	dcc.Row("tasks done", d.TasksDone.Value())
	dcc.Row("core-hours", d.WorkDone/3600)
	dcc.Row("mean job stretch", d.JobStretch.Mean())
	dcc.Row("throughput core-s/s", d.Throughput(now))
	dcc.Write(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "df3sim: "+format+"\n", args...)
	os.Exit(2)
}
