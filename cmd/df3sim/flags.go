package main

import (
	"fmt"

	"df3/internal/cliutil"
)

// simConfig is the parsed flag set, separated from main so the validation
// rules are unit-testable.
type simConfig struct {
	buildings, rooms, boilers int
	days                      float64
	edgeRate, dccRate         float64
	climate, start            string
	arch, policy              string
	cities, shards            int
	intercity                 float64
	csvPath, tracePath        string
	spansPath                 string
	mtbf                      float64
}

var (
	validClimates = map[string]bool{"paris": true, "stockholm": true, "seville": true}
	validStarts   = map[string]bool{"jan": true, "nov": true, "jul": true}
	validArchs    = map[string]bool{"shared": true, "dedicated": true}
	validPolicies = map[string]bool{
		"smart": true, "reject": true, "delay": true,
		"preempt": true, "vertical": true, "horizontal": true,
	}
)

// validate rejects invalid values and mutually exclusive combinations
// before the scenario is built, so a month-long simulation cannot die at
// its final report because an output path was mistyped.
func (c simConfig) validate() error {
	if c.buildings < 1 || c.rooms < 1 {
		return fmt.Errorf("need at least 1 building and 1 room (have %d×%d)", c.buildings, c.rooms)
	}
	if c.boilers < 0 || c.boilers > c.buildings {
		return fmt.Errorf("-boilers %d out of range 0..%d", c.boilers, c.buildings)
	}
	if c.days <= 0 {
		return fmt.Errorf("-days %v: need a positive horizon", c.days)
	}
	if c.edgeRate < 0 || c.dccRate < 0 || c.intercity < 0 || c.mtbf < 0 {
		return fmt.Errorf("rates must be non-negative (edge %v, dcc %v, intercity %v, mtbf %v)",
			c.edgeRate, c.dccRate, c.intercity, c.mtbf)
	}
	if !validClimates[c.climate] {
		return fmt.Errorf("unknown climate %q (paris|stockholm|seville)", c.climate)
	}
	if !validStarts[c.start] {
		return fmt.Errorf("unknown start %q (jan|nov|jul)", c.start)
	}
	if !validArchs[c.arch] {
		return fmt.Errorf("unknown arch %q (shared|dedicated)", c.arch)
	}
	if !validPolicies[c.policy] {
		return fmt.Errorf("unknown offload policy %q", c.policy)
	}
	if c.cities < 1 {
		return fmt.Errorf("-cities %d: need at least one city", c.cities)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: need at least one shard", c.shards)
	}
	if c.shards > c.cities {
		return fmt.Errorf("-shards %d exceeds -cities %d: a city is the unit of parallelism", c.shards, c.cities)
	}
	if c.cities > 1 {
		if c.csvPath != "" {
			return fmt.Errorf("-csv records one city's capacity series; not available with -cities %d", c.cities)
		}
		if c.tracePath != "" {
			return fmt.Errorf("-trace records one city's request events; not available with -cities %d (use -spans)", c.cities)
		}
		if c.mtbf > 0 {
			return fmt.Errorf("-mtbf fault injection is single-city only for now")
		}
	}
	for _, p := range []struct{ flag, path string }{
		{"-csv", c.csvPath},
		{"-trace", c.tracePath},
		{"-spans", c.spansPath},
	} {
		if p.path == "" {
			continue
		}
		if err := cliutil.CheckWritableFile(p.path); err != nil {
			return fmt.Errorf("%s: %w", p.flag, err)
		}
	}
	return nil
}
