package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// base is a valid single-city configuration; cases mutate one knob each.
func base() simConfig {
	return simConfig{
		buildings: 6, rooms: 8, days: 7, edgeRate: 1, dccRate: 1.5,
		climate: "paris", start: "nov", arch: "shared", policy: "smart",
		cities: 1, shards: 1, intercity: 2,
	}
}

func TestSimConfigValidate(t *testing.T) {
	dir := t.TempDir()

	cases := []struct {
		name    string
		mutate  func(*simConfig)
		wantErr string // "" = valid
	}{
		{"defaults", func(c *simConfig) {}, ""},
		{"federation", func(c *simConfig) { c.cities = 10; c.shards = 4 }, ""},
		{"zero buildings", func(c *simConfig) { c.buildings = 0 }, "at least 1 building"},
		{"too many boilers", func(c *simConfig) { c.boilers = 7 }, "out of range"},
		{"zero days", func(c *simConfig) { c.days = 0 }, "positive horizon"},
		{"negative edge rate", func(c *simConfig) { c.edgeRate = -1 }, "non-negative"},
		{"bad climate", func(c *simConfig) { c.climate = "mars" }, "unknown climate"},
		{"bad start", func(c *simConfig) { c.start = "aug" }, "unknown start"},
		{"bad arch", func(c *simConfig) { c.arch = "hybrid" }, "unknown arch"},
		{"bad policy", func(c *simConfig) { c.policy = "yolo" }, "unknown offload policy"},
		{"zero cities", func(c *simConfig) { c.cities = 0 }, "at least one city"},
		{"zero shards", func(c *simConfig) { c.shards = 0 }, "at least one shard"},
		{"shards beyond cities", func(c *simConfig) { c.cities = 2; c.shards = 4 }, "unit of parallelism"},
		{"shards without cities", func(c *simConfig) { c.shards = 4 }, "unit of parallelism"},
		{"csv in federation", func(c *simConfig) {
			c.cities, c.shards = 3, 2
			c.csvPath = filepath.Join(dir, "cap.csv")
		}, "-csv"},
		{"trace in federation", func(c *simConfig) {
			c.cities = 3
			c.tracePath = filepath.Join(dir, "t.csv")
		}, "-trace"},
		{"mtbf in federation", func(c *simConfig) { c.cities = 3; c.mtbf = 10 }, "single-city"},
		{"spans in federation ok", func(c *simConfig) {
			c.cities, c.shards = 3, 2
			c.spansPath = filepath.Join(dir, "spans.jsonl")
		}, ""},
		{"spans into missing dir", func(c *simConfig) {
			c.spansPath = filepath.Join(dir, "nope", "s.jsonl")
		}, "-spans"},
		{"csv single city ok", func(c *simConfig) { c.csvPath = filepath.Join(dir, "cap.csv") }, ""},
	}
	for _, c := range cases {
		cfg := base()
		c.mutate(&cfg)
		err := cfg.validate()
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.wantErr != "" && err == nil:
			t.Errorf("%s: expected error containing %q, got nil", c.name, c.wantErr)
		case c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr):
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.wantErr)
		}
	}
}
