package df3_test

import (
	"testing"

	"df3/internal/experiments"
)

// The benchmarks below regenerate each experiment of DESIGN.md's
// per-experiment index. They run the quick-mode configurations so that
// `go test -bench=. -benchmem` finishes in minutes; the df3bench command
// runs the full-fidelity versions. Headline findings are attached as
// custom benchmark metrics so regressions in *results* (not just runtime)
// show up in benchmark diffs.

func benchExperiment(b *testing.B, run func(experiments.Options) *experiments.Result, metrics []string) {
	b.Helper()
	opts := experiments.Options{Seed: 1, Quick: true}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		last = run(opts)
	}
	for _, m := range metrics {
		if v, ok := last.Findings[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkE1_Fig4Comfort(b *testing.B) {
	benchExperiment(b, experiments.E1Fig4Comfort,
		[]string{"min_month_mean", "max_month_mean", "in_band_fraction"})
}

func BenchmarkE2_PUE(b *testing.B) {
	benchExperiment(b, experiments.E2PUE, []string{"df_pue", "dc_pue"})
}

func BenchmarkE3_ThreeFlows(b *testing.B) {
	benchExperiment(b, experiments.E3ThreeFlows,
		[]string{"in_band", "edge_p99_ms", "edge_miss_rate", "dcc_stretch"})
}

func BenchmarkE4_ArchClasses(b *testing.B) {
	benchExperiment(b, experiments.E4ArchClasses, nil)
}

func BenchmarkE5_PeakPolicies(b *testing.B) {
	benchExperiment(b, experiments.E5PeakPolicies,
		[]string{"miss_reject", "miss_preempt", "miss_smart"})
}

func BenchmarkE6_Seasonality(b *testing.B) {
	benchExperiment(b, experiments.E6Seasonality,
		[]string{"heater_winter", "heater_summer"})
}

func BenchmarkE7_Forecast(b *testing.B) {
	benchExperiment(b, experiments.E7Forecast,
		[]string{"ts_wape", "hw_wape", "naive_wape"})
}

func BenchmarkE8_EdgeLatency(b *testing.B) {
	benchExperiment(b, experiments.E8EdgeLatency,
		[]string{"direct_median_ms", "indirect_median_ms", "cloud_median_ms"})
}

func BenchmarkE9_RenderCampaign(b *testing.B) {
	benchExperiment(b, experiments.E9RenderCampaign,
		[]string{"frames", "wall_days"})
}

func BenchmarkE10_WasteHeat(b *testing.B) {
	benchExperiment(b, experiments.E10WasteHeat, nil)
}

func BenchmarkE11_Pricing(b *testing.B) {
	benchExperiment(b, experiments.E11Pricing,
		[]string{"winter_price", "summer_price"})
}

func BenchmarkE12_DesktopGrid(b *testing.B) {
	benchExperiment(b, experiments.E12DesktopGrid,
		[]string{"df_miss", "grid_miss"})
}

func BenchmarkE13_CapacityPlanning(b *testing.B) {
	benchExperiment(b, experiments.E13CapacityPlanning,
		[]string{"prudent_penalties", "aggressive_penalties"})
}

func BenchmarkE14_Economics(b *testing.B) {
	benchExperiment(b, experiments.E14Economics,
		[]string{"df_net_per_ch", "dc_net_per_ch"})
}

func BenchmarkE15_DemandResponse(b *testing.B) {
	benchExperiment(b, experiments.E15DemandResponse,
		[]string{"shed_fraction", "min_temp_dr"})
}

func BenchmarkE16_ContentDelivery(b *testing.B) {
	benchExperiment(b, experiments.E16ContentDelivery,
		[]string{"hit_big", "median_0", "median_big"})
}

func BenchmarkE17_MarketSizing(b *testing.B) {
	benchExperiment(b, experiments.E17MarketSizing,
		[]string{"winter_cores", "amazon_x"})
}

func BenchmarkE19_ShardScale(b *testing.B) {
	benchExperiment(b, experiments.E19ShardScale,
		[]string{"speedup_4x_2s", "identical_all"})
}

func BenchmarkAblationRegulator(b *testing.B) {
	benchExperiment(b, experiments.AblationRegulator,
		[]string{"hyst_switches", "prop_switches"})
}

func BenchmarkAblationClustering(b *testing.B) {
	benchExperiment(b, experiments.AblationClustering, nil)
}

func BenchmarkAblationEDF(b *testing.B) {
	benchExperiment(b, experiments.AblationEDF,
		[]string{"fcfs_miss", "edf_miss"})
}

func BenchmarkAblationBoilerBuffer(b *testing.B) {
	benchExperiment(b, experiments.AblationBoilerBuffer, nil)
}

func BenchmarkAblationClimate(b *testing.B) {
	benchExperiment(b, experiments.AblationClimate,
		[]string{"cap_stockholm", "cap_paris", "cap_seville"})
}
