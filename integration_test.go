package df3_test

import (
	"math"
	"testing"

	"df3/internal/city"
	"df3/internal/sim"
)

// TestSystemEndToEnd drives the whole stack — weather, thermal zones, DVFS
// regulation, the middleware's three flows, fault injection, boilers and
// the datacenter — in one scenario, and checks the cross-cutting
// invariants that no single package test can see.
func TestSystemEndToEnd(t *testing.T) {
	cfg := city.DefaultConfig()
	cfg.Buildings = 3
	cfg.RoomsPerBuilding = 4
	cfg.BoilerBuildings = 1
	cfg.MTBF = 2 * sim.Day
	c := city.Build(cfg)

	horizon := 4 * sim.Day
	c.StartEdgeTraffic(horizon, 1)
	c.StartDCCTraffic(horizon, 1)
	c.StartSenseLoops(horizon, 120)
	fin := c.StartFinanceTraffic(horizon)
	c.Run(horizon + 12*sim.Hour)

	// 1. Energy conservation across the fleet: facility ≥ IT ≥ heat.
	it, fac, heat := c.Fleet.Energy(c.Engine.Now())
	if !(fac >= it && it >= heat && heat > 0) {
		t.Errorf("energy ordering broken: fac=%v it=%v heat=%v", fac, it, heat)
	}
	// 2. PUE within DF bounds.
	if pue := c.Fleet.PUE(c.Engine.Now()); pue < 1.0 || pue > 1.05 {
		t.Errorf("fleet PUE = %v", pue)
	}
	// 3. Edge conservation: served + rejected = arrived, queues drained.
	e := &c.MW.Edge
	if e.Arrived() == 0 {
		t.Fatal("no edge traffic")
	}
	for _, b := range c.Buildings {
		if b.Cluster.EdgeQueueLen() != 0 {
			t.Errorf("building %d edge queue not drained", b.Index)
		}
	}
	// 4. Comfort held despite failures (backup resistor).
	for _, r := range c.Rooms() {
		if r.Comfort.InBandFraction() < 0.6 {
			t.Errorf("room b%d-r%d comfort %.2f", r.Building, r.Index, r.Comfort.InBandFraction())
		}
	}
	// 5. All flows made progress.
	if c.MW.DCC.JobsDone.Value() == 0 {
		t.Error("no DCC jobs completed")
	}
	if fin.Submitted == 0 || fin.OnTime+fin.Late != fin.Submitted {
		t.Errorf("finance accounting: %+v", fin)
	}
	// 6. Failures actually happened and healed.
	if c.Outages.Value() == 0 {
		t.Error("no outages with a 2-day MTBF over 4 days")
	}
}

// TestSystemDeterminism runs the full stack twice and requires exact
// metric equality — the repository's central reproducibility guarantee.
func TestSystemDeterminism(t *testing.T) {
	run := func() [6]float64 {
		cfg := city.DefaultConfig()
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 3
		cfg.BoilerBuildings = 1
		cfg.MTBF = sim.Day
		c := city.Build(cfg)
		c.StartEdgeTraffic(2*sim.Day, 1)
		c.StartDCCTraffic(2*sim.Day, 1)
		c.Run(3 * sim.Day)
		it, _, heat := c.Fleet.Energy(c.Engine.Now())
		return [6]float64{
			float64(c.MW.Edge.Served.Value()),
			c.MW.Edge.Latency.Mean(),
			float64(c.MW.DCC.TasksDone.Value()),
			float64(it),
			float64(heat),
			float64(c.Outages.Value()),
		}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("metric %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSeedsProduceDifferentRuns guards against accidentally ignoring the
// seed somewhere in the stack.
func TestSeedsProduceDifferentRuns(t *testing.T) {
	run := func(seed uint64) float64 {
		cfg := city.DefaultConfig()
		cfg.Seed = seed
		cfg.Buildings = 2
		cfg.RoomsPerBuilding = 3
		c := city.Build(cfg)
		c.StartEdgeTraffic(sim.Day, 1)
		c.Run(sim.Day)
		return c.MW.Edge.Latency.Mean() * float64(c.MW.Edge.Served.Value())
	}
	if a, b := run(1), run(2); math.Abs(a-b) < 1e-12 {
		t.Error("different seeds produced identical runs")
	}
}
