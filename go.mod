module df3

go 1.22
